package chain

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/manifest"
)

// deleteAndTruncate seals one data entry, deletes it, and drives the
// chain until the truncation that physically erases it has executed,
// returning the victim's ref and its entry digest.
func deleteAndTruncate(t *testing.T, c *Chain, env *testEnv, tag string) (block.Ref, codec.Hash) {
	t.Helper()
	ctx := context.Background()
	e := env.data("alpha", "victim-"+tag)
	digest := e.Hash()
	sealed, err := c.SubmitWait(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	victim := sealed[0].Ref
	if _, err := c.SubmitWait(ctx, env.del("alpha", victim)); err != nil {
		t.Fatal(err)
	}
	// Filler churn until retention cuts past the victim.
	for i := 0; c.Marker() <= victim.Block; i++ {
		if i > 64 {
			t.Fatal("truncation never passed the victim")
		}
		if _, err := c.SubmitWait(ctx, env.data("alpha", fmt.Sprintf("churn-%s-%d", tag, i))); err != nil {
			t.Fatal(err)
		}
		if err := c.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return victim, digest
}

func TestTruncationSealsDeletionRecord(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	defer c.Close()
	victim, digest := deleteAndTruncate(t, c, env, "a")

	recs, err := c.Tombstones(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no deletion record after truncation")
	}
	// Sequence numbers are strictly increasing from 1 and markers never
	// regress: the log is a coherent history, not a bag.
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
		if i > 0 && r.NewMarker < recs[i-1].NewMarker {
			t.Errorf("record %d regresses marker %d -> %d", i, recs[i-1].NewMarker, r.NewMarker)
		}
	}
	head := recs[len(recs)-1]
	if head.NewMarker != c.Marker() {
		t.Errorf("head record marker %d, chain marker %d", head.NewMarker, c.Marker())
	}
	if got, ok := c.TombstoneHead(); !ok || got.Seq != head.Seq {
		t.Errorf("TombstoneHead = %+v ok=%v", got, ok)
	}
	if c.ResurrectionFloor() != head.NewMarker {
		t.Errorf("floor %d, want %d", c.ResurrectionFloor(), head.NewMarker)
	}
	// The record that covers the victim carries its tombstone, with the
	// requester identity and the erased entry's content digest.
	var tomb *manifest.Tombstone
	for _, r := range recs {
		if r.Covers(victim.Block) {
			if tb, ok := r.FindTombstone(victim); ok {
				tomb = &tb
				// The summary block the record points at is still live
				// and hashes to the recorded digest.
				if b, ok := c.blockAt(r.SummaryBlock); ok {
					if b.Hash() != r.SummaryHash {
						t.Error("record summary hash does not match the live summary block")
					}
				}
			}
		}
	}
	if tomb == nil {
		t.Fatal("no tombstone for the deleted entry")
	}
	if tomb.Requester != "alpha" {
		t.Errorf("tombstone requester %q", tomb.Requester)
	}
	if tomb.EntryDigest != digest {
		t.Error("tombstone digest does not match the erased entry")
	}
	if tomb.MarkedAtBlock == 0 {
		t.Error("tombstone lost the marking height")
	}
}

func TestProveDeletedAndVerify(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	defer c.Close()
	victim, _ := deleteAndTruncate(t, c, env, "b")

	// The entry is gone from the chain...
	if _, _, ok := c.Lookup(victim); ok {
		t.Fatal("victim still resolvable after truncation")
	}
	// ...but the proof of its deliberate erasure verifies.
	p, err := c.ProveDeleted(victim)
	if err != nil {
		t.Fatalf("ProveDeleted: %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !p.Record.Covers(victim.Block) {
		t.Error("proof record does not cover the victim")
	}

	// Still-live entries and never-existed refs draw distinct errors.
	sealed, err := c.SubmitWait(context.Background(), env.data("alpha", "live"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProveDeleted(sealed[0].Ref); !errors.Is(err, ErrNotDeleted) {
		t.Errorf("live entry: %v, want ErrNotDeleted", err)
	}
	if _, err := c.ProveDeleted(block.Ref{Block: 1 << 40, Entry: 7}); !errors.Is(err, ErrNotFound) {
		t.Errorf("phantom ref: %v, want ErrNotFound", err)
	}

	// Tampering is detected: the proof is self-contained evidence, so
	// every rebinding attempt must fail Verify.
	tampered := *p
	tampered.Ref = block.Ref{Block: p.Ref.Block, Entry: p.Ref.Entry + 1}
	if err := tampered.Verify(); err == nil {
		t.Error("proof rebound to a sibling entry verified")
	}
	tampered = *p
	tampered.Tombstone.Requester = "mallory"
	if err := tampered.Verify(); err == nil {
		t.Error("proof with forged requester verified")
	}
	if p.SummaryHeader != nil {
		hdr := *p.SummaryHeader
		hdr.Time++
		tampered = *p
		tampered.SummaryHeader = &hdr
		if err := tampered.Verify(); err == nil {
			t.Error("proof with doctored summary header verified")
		}
	}
	// A record whose new marker sits at or below the target's block is
	// impossible (the block would not have been cut yet). Range shifts
	// that keep the target below the new marker are legitimate — that
	// is exactly the shape of a carried entry erased when its carrier
	// summary was cut (see TestProveDeletedCarriedVictim).
	tampered = *p
	tampered.Record.NewMarker = p.Ref.Block
	if err := tampered.Verify(); err == nil {
		t.Error("proof with record marker at the target block verified")
	}
}

// TestProveDeletedCarriedVictim pins the carried-entry erasure shape:
// an entry that survived into a summary block before its deletion mark
// landed is erased when the carrier is cut, so the covering record's
// range starts above the entry's origin block. The proof must still
// verify — the tombstone membership, not origin-range coverage, is the
// binding.
func TestProveDeletedCarriedVictim(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	defer c.Close()
	ctx := context.Background()
	sealed, err := c.SubmitWait(ctx, env.data("alpha", "carried-victim"))
	if err != nil {
		t.Fatal(err)
	}
	victim := sealed[0].Ref
	// Churn until the origin block is cut while the entry (unmarked)
	// is carried forward.
	for i := 0; c.Marker() <= victim.Block; i++ {
		if i > 64 {
			t.Fatal("origin block never cut")
		}
		if _, err := c.SubmitWait(ctx, env.data("alpha", fmt.Sprintf("pre-churn-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Lookup(victim); !ok {
		t.Fatal("victim not carried forward")
	}
	// Now delete the carried entry and churn until the mark executes.
	if _, err := c.SubmitWait(ctx, env.del("alpha", victim)); err != nil {
		t.Fatal(err)
	}
	var proof *DeletedProof
	for i := 0; ; i++ {
		if i > 64 {
			t.Fatal("carried victim never erased")
		}
		if _, err := c.SubmitWait(ctx, env.data("alpha", fmt.Sprintf("post-churn-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
		if p, err := c.ProveDeleted(victim); err == nil {
			proof = p
			break
		}
	}
	if proof.Record.Covers(victim.Block) {
		t.Log("record covers the origin; carried shape not exercised this run")
	}
	if err := proof.Verify(); err != nil {
		t.Fatalf("carried-victim proof failed verification: %v", err)
	}
}

// TestProveDeletedRecordOnly covers the degraded path: when the summary
// block the record points at is no longer live (a later truncation cut
// it), the record and tombstone alone remain the evidence.
func TestProveDeletedRecordOnly(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	defer c.Close()
	victim, _ := deleteAndTruncate(t, c, env, "c")
	// Keep truncating until the covering record's summary block is cut.
	for i := 0; ; i++ {
		if i > 64 {
			t.Skip("summary block never left the live window")
		}
		p, err := c.ProveDeleted(victim)
		if err != nil {
			t.Fatal(err)
		}
		if p.SummaryHeader == nil {
			if err := p.Verify(); err != nil {
				t.Fatalf("record-only proof failed verification: %v", err)
			}
			return
		}
		if _, err := c.SubmitWait(context.Background(), env.data("alpha", fmt.Sprintf("roll-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.CompactWait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSeedTombstones(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	defer c.Close()
	target := block.Ref{Block: 4, Entry: 0}
	seeded := []manifest.Record{
		{Seq: 3, OldMarker: 0, NewMarker: 3},
		{Seq: 5, OldMarker: 3, NewMarker: 6, Tombstones: []manifest.Tombstone{
			{Target: target, Requester: "alpha"},
		}},
	}
	// Seed out of order: the index must sort by sequence.
	c.SeedTombstones([]manifest.Record{seeded[1], seeded[0]})

	if got := c.ResurrectionFloor(); got != 6 {
		t.Errorf("floor %d after seeding, want 6", got)
	}
	if head, ok := c.TombstoneHead(); !ok || head.Seq != 5 {
		t.Errorf("head = %+v ok=%v, want seq 5", head, ok)
	}
	p, err := c.ProveDeleted(target)
	if err != nil {
		t.Fatalf("ProveDeleted on seeded tombstone: %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("seeded proof: %v", err)
	}
	if p.SummaryHeader != nil {
		t.Error("seeded proof claims a live summary it cannot have")
	}

	// Records sealed after seeding continue the sequence instead of
	// colliding with it.
	deleteAndTruncate(t, c, env, "d")
	head, ok := c.TombstoneHead()
	if !ok || head.Seq <= 5 {
		t.Fatalf("post-seed record seq %d, want > 5", head.Seq)
	}
	recs, err := c.Tombstones(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("seeded records dropped: %d total", len(recs))
	}
}
