package chain

import (
	"context"
	"fmt"
	"iter"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/compact"
	"github.com/seldel/seldel/internal/mempool"
)

// Submit enqueues entries into the chain's submission pipeline and
// returns one Receipt per entry, in order. Entries from many concurrent
// callers are coalesced into full blocks by a single flusher (flushing
// when the batch reaches Config.MaxBatch or when the submission stream
// goes idle for Config.BatchLinger), so Submit is the concurrency-safe
// write path: concurrent Submits never race each other for the head
// block.
//
// Each receipt resolves once its entry's block is sealed and appended —
// to the entry's stable Ref, block number, and block hash — or to a
// per-entry validation error. Entries of a single call are always sealed
// together in the same block. Submit blocks only while the pipeline
// intake is full; pass a cancellable ctx to bound that wait. After Close,
// Submit returns mempool.ErrClosed.
func (c *Chain) Submit(ctx context.Context, entries ...*block.Entry) ([]mempool.Receipt, error) {
	// Fast path: the batcher, once started, is read lock-free; a closed
	// batcher answers ErrClosed itself.
	if b := c.pipe.Load(); b != nil {
		return b.Submit(ctx, entries...)
	}
	b, err := c.pipeline()
	if err != nil {
		return nil, err
	}
	return b.Submit(ctx, entries...)
}

// SubmitWait submits entries and blocks until every receipt resolves,
// returning the sealed results in submission order. It fails fast on the
// first per-entry error.
func (c *Chain) SubmitWait(ctx context.Context, entries ...*block.Entry) ([]mempool.Sealed, error) {
	receipts, err := c.Submit(ctx, entries...)
	if err != nil {
		return nil, err
	}
	out := make([]mempool.Sealed, len(receipts))
	for i, r := range receipts {
		s, err := r.Wait(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// SealBlocks is the deterministic drivers' synchronous write: it seals
// entries through the submission pipeline (SubmitWait) and returns the
// blocks that flush appended — the normal block holding the entries
// plus the directly following summary block, if that slot was due.
// Single-threaded callers (experiments, scenario tests, examples) get
// one block per call with exactly their entries; with concurrent
// writers only the block actually holding the entries is guaranteed to
// be theirs. Not part of the public façade — applications use
// Submit/SubmitWait and receipts.
func SealBlocks(ctx context.Context, c *Chain, entries ...*block.Entry) ([]*block.Block, error) {
	sealed, err := c.SubmitWait(ctx, entries...)
	if err != nil {
		return nil, err
	}
	if len(sealed) == 0 {
		return nil, nil
	}
	normal, ok := c.Block(sealed[0].Block)
	if !ok {
		return nil, fmt.Errorf("chain: sealed block %d no longer live", sealed[0].Block)
	}
	out := []*block.Block{normal}
	if summary, ok := c.Block(normal.Header.Number + 1); ok && summary.IsSummary() {
		out = append(out, summary)
	}
	return out, nil
}

// pipeline lazily starts the batcher on first use.
func (c *Chain) pipeline() (*mempool.Batcher, error) {
	c.pipeMu.Lock()
	defer c.pipeMu.Unlock()
	if b := c.pipe.Load(); b != nil {
		return b, nil
	}
	if c.pipeClosed {
		return nil, mempool.ErrClosed
	}
	opts := mempool.Options{
		MaxBatch: c.cfg.MaxBatch,
		Linger:   c.cfg.BatchLinger,
	}
	if c.cfg.Verifier.HasCache() {
		// Pre-verify submissions while their batch assembles, so the
		// sealing commit resolves the signatures from the verified-
		// signature cache instead of re-paying Ed25519 for each.
		opts.Warm = func(entries []*block.Entry) {
			c.cfg.Verifier.Warm(c.cfg.Registry, entries)
		}
	}
	if c.cfg.Durability.Mode == DurabilityGroup {
		// Group commit: sealed batches hand their receipt resolution to
		// the committer, which shares one store fsync across everything
		// sealed since the previous sync.
		c.gc = newGroupCommitter(c.cfg.Durability.Sync, c.cfg.Durability.GroupWindow)
		opts.Durable = c.gc.enqueue
	}
	b := mempool.NewBatcher(sealer{c}, opts)
	c.pipe.Store(b)
	return b, nil
}

// sealer adapts the chain's unexported sealing primitive to the
// pipeline's Ledger interface without exporting a synchronous commit
// on Chain itself.
type sealer struct{ c *Chain }

// Seal implements mempool.Ledger.
func (s sealer) Seal(entries []*block.Entry) ([]*block.Block, []mempool.MarkOutcome, error) {
	return s.c.commit(entries)
}

// ValidateEntries implements mempool.Ledger.
func (s sealer) ValidateEntries(entries []*block.Entry) error {
	return s.c.ValidateEntries(entries)
}

// PipelineStats returns the submission pipeline's cumulative counters
// and backpressure gauges: intake-queue depth/capacity, the adaptive
// linger currently applied, the verification pool's utilization and
// cache effectiveness, and the background compactor's progress
// (pending truncations, blocks/bytes physically reclaimed). The
// counters survive Close, so shutdown reports see the final totals;
// the verify and compaction snapshots are filled even before the first
// Submit. Note the verify gauges describe the chain's POOL: when
// several chains share one (the default verify.Shared()), they include
// the other chains' traffic too — give a chain its own pool via
// Config.Verifier to isolate its numbers.
func (c *Chain) PipelineStats() mempool.Stats {
	var s mempool.Stats
	if b := c.pipe.Load(); b != nil {
		s = b.Stats()
	}
	s.Verify = c.cfg.Verifier.Stats()
	c.mu.RLock()
	s.Index = mempool.IndexStats{
		Live:     len(c.index),
		Peak:     c.indexPeak,
		Rebuilds: c.indexRebuilds,
	}
	c.mu.RUnlock()
	if k := c.comp.Load(); k != nil {
		s.Compaction = k.Stats()
	} else {
		// Never truncated: report the configured mode without starting
		// the compactor goroutine for a pure read.
		s.Compaction = compact.Stats{Synchronous: c.cfg.Compaction.Synchronous}
	}
	return s
}

// Close shuts down the submission pipeline and the background
// compactor, in that order: in-flight submissions are still sealed and
// their receipts resolve, then the flusher exits; pending truncations
// are compacted (stores pruned), then the compactor exits. Subsequent
// Submit calls return mempool.ErrClosed; reads, AppendBlock/AppendEmpty,
// and PipelineStats keep working (late truncations compact inline).
// Close is idempotent, and concurrent Close calls all block until the
// drain completes.
func (c *Chain) Close() error {
	c.pipeMu.Lock()
	c.pipeClosed = true
	b := c.pipe.Load()
	c.pipeMu.Unlock()
	var err error
	if b != nil {
		err = b.Close()
	}
	// The committer closes after the batcher has fully drained: its
	// queue then holds every not-yet-durable batch, and Close issues
	// their final sync before the owned store shuts down below.
	c.pipeMu.Lock()
	gc := c.gc
	c.pipeMu.Unlock()
	if gc != nil {
		gc.Close()
	}
	c.compMu.Lock()
	c.compClosed = true
	k := c.comp.Load()
	c.compMu.Unlock()
	if k != nil {
		k.Close()
	}
	// Owned resources (stores opened by the façade on the caller's
	// behalf) close last, after the compactor's final store pruning:
	// this is where a segment store syncs its active tail and persists
	// its manifest.
	c.ownMu.Lock()
	owned := c.owned
	c.owned = nil
	c.ownMu.Unlock()
	for _, r := range owned {
		if cerr := r.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// BlocksSeq streams the live blocks in order without copying the whole
// live slice up front: the block pointers are snapshotted under the read
// lock, then yielded lock-free, so consumers may call any chain method
// (or break early) mid-iteration.
func (c *Chain) BlocksSeq() iter.Seq[*block.Block] {
	return func(yield func(*block.Block) bool) {
		for _, b := range c.snapshotBlocks() {
			if !yield(b) {
				return
			}
		}
	}
}

// EntriesSeq streams every live entry with its stable reference: entries
// of normal blocks (data, deletion requests, temporaries) and entries
// carried into summary blocks, in chain order. Like BlocksSeq it
// snapshots under the read lock and yields lock-free. Use IsMarked to
// filter entries that are logically forgotten but not yet physically
// deleted.
func (c *Chain) EntriesSeq() iter.Seq2[block.Ref, *block.Entry] {
	return func(yield func(block.Ref, *block.Entry) bool) {
		for _, b := range c.snapshotBlocks() {
			if b.IsSummary() {
				for _, ce := range b.Carried {
					if !yield(ce.Ref(), ce.Entry) {
						return
					}
				}
				continue
			}
			num := b.Header.Number
			for i, e := range b.Entries {
				if !yield(block.Ref{Block: num, Entry: uint32(i)}, e) {
					return
				}
			}
		}
	}
}

func (c *Chain) snapshotBlocks() []*block.Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*block.Block, len(c.blocks))
	copy(out, c.blocks)
	return out
}
