package chain

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/deletion"
	"github.com/seldel/seldel/internal/verify"
)

// TestDeletionStormRace is the acceptance test for the asynchronous
// deletion lifecycle: 16 producers concurrently submit data entries,
// plain deletion requests, and co-signed deletion requests for entries
// with dependents, on a retention-bounded chain whose background
// compactor truncates behind the appends. Run with -race. The dedicated
// verification pool's counters prove the co-signatures were verified
// through the pool (i.e. outside Chain.mu — the under-lock path,
// ValidateRequestPrechecked, performs no signature checks, which
// TestPrecheckedValidationSkipsSignatures pins separately).
func TestDeletionStormRace(t *testing.T) {
	users := make([]string, 16)
	for i := range users {
		users[i] = fmt.Sprintf("storm-%d", i)
	}
	env := newEnv(t, users...)
	pool := verify.New(verify.Options{})
	defer pool.Close()
	cfg := Config{
		SequenceLength: 4,
		MaxBlocks:      16,
		Shrink:         ShrinkMinimal,
		Registry:       env.registry,
		Clock:          defaultConfig(env).Clock,
		Verifier:       pool,
	}
	c := newChain(t, cfg)
	defer c.Close()

	ctx := context.Background()
	const perProducer = 24
	var (
		wg   sync.WaitGroup
		errs = make(chan error, len(users))
	)
	for w := range users {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := users[w]
			peer := users[(w+1)%len(users)]
			for i := 0; i < perProducer; i++ {
				// Write a victim, then a dependent owned by a peer, then
				// request deletion with the peer's co-signature — the full
				// §IV-D pipeline under contention. Every third round skips
				// the dependent to also exercise the plain path.
				sealed, err := c.SubmitWait(ctx, env.data(me, fmt.Sprintf("v-%d-%d", w, i)))
				if err != nil {
					errs <- err
					return
				}
				victim := sealed[0].Ref
				req := block.NewDeletion(me, victim)
				if i%3 != 0 {
					if _, err := c.SubmitWait(ctx,
						block.NewData(peer, []byte(fmt.Sprintf("dep-%d-%d", w, i))).
							WithDependsOn(victim).Sign(env.keys[peer])); err != nil {
						// The victim's block may already have been cut or the
						// victim marked by an unrelated race — both surface as
						// per-entry validation errors, which are expected here.
						continue
					}
					req.AddCoSignature(env.keys[peer])
				}
				if _, err := c.Submit(ctx, req.Sign(env.keys[me])); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.CompactWait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after storm: %v", err)
	}
	st := c.Stats()
	if st.CutBlocks == 0 {
		t.Error("bounded chain never truncated under the storm")
	}
	if st.ForgottenEntries == 0 {
		t.Error("no entry was physically forgotten")
	}
	ps := c.PipelineStats()
	if ps.Compaction.Truncations == 0 || ps.Compaction.BlocksCompacted == 0 {
		t.Errorf("compactor executed nothing: %+v", ps.Compaction)
	}
	if ps.Compaction.Pending != 0 {
		t.Errorf("compactor still pending after Close: %+v", ps.Compaction)
	}
	// Co-signature checks must have flowed through the pool: the chain
	// has a dedicated pool, and only entry signatures + co-signatures
	// route through it. More verifications than entries submitted proves
	// the co-signature share.
	entriesSubmitted := ps.Entries + ps.Rejected
	if got := ps.Verify.Verified + ps.Verify.CacheHits; got <= entriesSubmitted {
		t.Errorf("pool answered %d checks for %d entries: co-signatures did not route through the pool", got, entriesSubmitted)
	}
}

// TestPrecheckedValidationSkipsSignatures pins the lock-safety contract
// of the under-lock half of deletion authorization: given precomputed
// co-signature verdicts, ValidateRequestPrechecked must not verify any
// signature itself. A request whose attached co-signature bytes are
// garbage still passes when the precheck vouches for the co-signer —
// and is rejected when it does not — so a call site holding Chain.mu
// cannot be paying Ed25519 costs (or consulting Registry.Verify) there.
func TestPrecheckedValidationSkipsSignatures(t *testing.T) {
	env := newEnv(t, "ALPHA", "BRAVO")
	auth := deletion.NewAuthorizer(env.registry, deletion.PolicyRoleBased)
	target := env.data("ALPHA", "victim")
	targetRef := block.Ref{Block: 1, Entry: 0}
	deps := []deletion.Dependent{{Ref: block.Ref{Block: 2, Entry: 0}, Owner: "BRAVO"}}

	req := block.NewDeletion("ALPHA", targetRef)
	req.CoSigners = []block.CoSignature{{Name: "BRAVO", Signature: []byte("garbage")}}
	req.Sign(env.keys["ALPHA"])

	// Vouched precheck: passes without touching the garbage bytes.
	pre := deletion.CoSigCheck{Approved: map[string]bool{"BRAVO": true}}
	if err := auth.ValidateRequestPrechecked(req, target, deps, pre); err != nil {
		t.Errorf("vouched precheck rejected: %v", err)
	}
	// Zero precheck fails closed: the dependent's owner is missing.
	if err := auth.ValidateRequestPrechecked(req, target, deps, deletion.CoSigCheck{}); err == nil {
		t.Error("zero precheck accepted a co-signed dependent")
	}
	// A real precheck over the garbage signature reports the bad signer.
	pool := verify.New(verify.Options{})
	defer pool.Close()
	real := deletion.PrecheckRequest(pool, env.registry, req)
	if real.BadSigner != "BRAVO" {
		t.Errorf("BadSigner = %q, want BRAVO", real.BadSigner)
	}
}

// TestLedgerExpiryHeapAfterTruncate drives temporaries through a
// truncation and checks the expiry-heap bookkeeping: dead deadlines are
// dropped lazily from the tops, live deadlines stay, and expiryPossible
// keeps answering correctly for the candidates that remain.
func TestLedgerExpiryHeapAfterTruncate(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env) // l=3, MaxSequences=2
	cfg.Shrink = ShrinkMinimal
	c := newChain(t, cfg)

	// One short-lived temporary (expires inside the first retention
	// window), one long-lived one, and durable filler.
	mustSeal(t, c, env.temp("alpha", "short", 0, 4))
	mustSeal(t, c, env.temp("alpha", "long", 0, 1000))
	for i := 0; i < 8; i++ {
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("fill-%d", i)))
	}
	if c.Stats().CutBlocks == 0 {
		t.Fatal("precondition: chain never truncated")
	}
	if c.Stats().ExpiredEntries == 0 {
		t.Fatal("short temporary never expired")
	}

	c.mu.RLock()
	defer c.mu.RUnlock()
	// Heap tops must reference live ledger candidates only (prune's
	// lazy cleanup guarantees the TOP is live; deeper items may be dead
	// but must never make expiryPossible falsely negative).
	for _, h := range []*deadlineHeap{&c.ledger.expireTime, &c.ledger.expireBlock} {
		if h.Len() == 0 {
			continue
		}
		if _, alive := c.ledger.byRef[(*h)[0].ref]; !alive {
			t.Errorf("heap top %v references a pruned candidate", (*h)[0])
		}
	}
	// The long temporary is still pending, so a block number past its
	// deadline must report expiry possible, and the current head must
	// not.
	if !c.ledger.expiryPossible(0, 1001) {
		t.Error("pending long deadline invisible to expiryPossible")
	}
	if c.ledger.expiryPossible(0, c.head().Header.Number+1) {
		t.Error("expiryPossible true with no deadline due — stale heap item survived pruning")
	}
}

// TestMarkOnCarriedEntry lands a deletion mark on an entry that already
// migrated into a summary block: the ledger candidate must flip to
// marked, the next summary must leave the entry out, and the following
// cut must count it as forgotten.
func TestMarkOnCarriedEntry(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env) // l=3, MaxSequences=2, ShrinkAllButNewest
	c := newChain(t, cfg)

	sealed := mustSeal(t, c, env.data("alpha", "victim"))
	victim := block.Ref{Block: sealed[0].Header.Number, Entry: 0}
	// Drive until the victim is carried inside a summary block.
	for i := 0; ; i++ {
		if _, loc, ok := c.Lookup(victim); ok && loc.Carried {
			break
		}
		if i > 64 {
			t.Fatal("victim never migrated into a summary")
		}
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("fill-%d", i)))
	}
	mustSeal(t, c, env.del("alpha", victim))
	if !c.IsMarked(victim) {
		t.Fatal("mark on carried entry not recorded")
	}
	c.mu.RLock()
	cand, ok := c.ledger.byRef[victim]
	if !ok || !cand.marked {
		t.Errorf("ledger candidate not marked (ok=%v)", ok)
	}
	c.mu.RUnlock()
	// Every future summary must exclude the marked carried entry, and
	// the cut that drops its holder must count it forgotten.
	for i := 0; c.Stats().ForgottenEntries == 0; i++ {
		if i > 128 {
			t.Fatal("marked carried entry never physically forgotten")
		}
		blocks := mustSeal(t, c, env.data("alpha", fmt.Sprintf("drive-%d", i)))
		for _, b := range blocks {
			if !b.IsSummary() {
				continue
			}
			for _, ce := range b.Carried {
				if ce.Ref() == victim {
					t.Fatal("marked entry carried forward into a summary")
				}
			}
		}
	}
	if _, _, ok := c.Lookup(victim); ok {
		t.Error("forgotten entry still resolvable")
	}
}
