package verify

import (
	"crypto/ed25519"
	"fmt"
	"testing"

	"github.com/seldel/seldel/internal/identity"
)

// batchFixture signs n distinct messages with per-index deterministic
// keys and returns the parallel (pub, msg, sig) columns.
func batchFixture(n int) (pubs []ed25519.PublicKey, msgs, sigs [][]byte) {
	for i := 0; i < n; i++ {
		kp := identity.Deterministic(fmt.Sprintf("signer-%d", i), "batch-test")
		msg := []byte(fmt.Sprintf("message-%d", i))
		pubs = append(pubs, kp.Public())
		msgs = append(msgs, msg)
		sigs = append(sigs, kp.Sign(msg))
	}
	return
}

func TestBatchVerifyAllValid(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(Options{Workers: workers})
		pubs, msgs, sigs := batchFixture(40)
		b := p.NewBatch(40)
		for i := range pubs {
			b.Add(pubs[i], msgs[i], sigs[i])
		}
		for i, ok := range b.Verify() {
			if !ok {
				t.Fatalf("workers=%d: valid signature %d rejected", workers, i)
			}
		}
		if got := p.Stats().Batched; got != 40 {
			t.Fatalf("workers=%d: Batched = %d, want 40", workers, got)
		}
	}
}

// TestBatchBisectionPinpointsSingleBadSignature is the acceptance
// check for bisection: in a 64-signature batch with exactly one
// corrupted signature, the verdicts must reject that signature alone,
// and the bisection must keep the curve work near one-pass — not
// degrade to a second full per-signature sweep.
func TestBatchBisectionPinpointsSingleBadSignature(t *testing.T) {
	for _, badIdx := range []int{0, 17, 40, 63} {
		p := New(Options{Workers: 4})
		pubs, msgs, sigs := batchFixture(64)
		sigs[badIdx] = append([]byte(nil), sigs[badIdx]...)
		sigs[badIdx][3] ^= 0xff
		b := p.NewBatch(64)
		for i := range pubs {
			b.Add(pubs[i], msgs[i], sigs[i])
		}
		for i, ok := range b.Verify() {
			if ok == (i == badIdx) {
				t.Fatalf("bad=%d: verdict[%d] = %v", badIdx, i, ok)
			}
		}
		// 64 signatures = 4 chunks of 16. The three clean chunks cost 16
		// verifications each; the poisoned chunk's bisection re-checks
		// log-depth halves. Well under a second full sweep.
		if v := p.Stats().Verified; v >= 128 {
			t.Fatalf("bad=%d: %d verifications — bisection degraded to per-signature fallback", badIdx, v)
		}
	}
}

func TestBatchManyBadSignatures(t *testing.T) {
	p := New(Options{Workers: 2})
	pubs, msgs, sigs := batchFixture(30)
	bad := map[int]bool{1: true, 2: true, 15: true, 29: true}
	for i := range bad {
		sigs[i] = append([]byte(nil), sigs[i]...)
		sigs[i][0] ^= 0x01
	}
	b := p.NewBatch(30)
	for i := range pubs {
		b.Add(pubs[i], msgs[i], sigs[i])
	}
	for i, ok := range b.Verify() {
		if ok == bad[i] {
			t.Fatalf("verdict[%d] = %v, want %v", i, ok, !bad[i])
		}
	}
}

func TestBatchScreensCacheHits(t *testing.T) {
	p := New(Options{Workers: 2})
	pubs, msgs, sigs := batchFixture(12)
	for i := range pubs {
		if !p.VerifySig(pubs[i], msgs[i], sigs[i]) {
			t.Fatalf("warm VerifySig %d failed", i)
		}
	}
	before := p.Stats().Verified
	b := p.NewBatch(12)
	for i := range pubs {
		b.Add(pubs[i], msgs[i], sigs[i])
	}
	for i, ok := range b.Verify() {
		if !ok {
			t.Fatalf("cached signature %d rejected", i)
		}
	}
	s := p.Stats()
	if s.Verified != before {
		t.Fatalf("cache screen leaked %d signatures to the curve", s.Verified-before)
	}
	if s.Batched != 0 {
		t.Fatalf("Batched = %d on a fully cached batch, want 0", s.Batched)
	}
}

func TestBatchCollapsesDuplicates(t *testing.T) {
	p := New(Options{Workers: 2})
	pubs, msgs, sigs := batchFixture(3)
	b := p.NewBatch(12)
	for rep := 0; rep < 4; rep++ {
		for i := range pubs {
			b.Add(pubs[i], msgs[i], sigs[i])
		}
	}
	for i, ok := range b.Verify() {
		if !ok {
			t.Fatalf("verdict[%d] = false", i)
		}
	}
	if v := p.Stats().Verified; v != 3 {
		t.Fatalf("duplicates not collapsed: %d verifications, want 3", v)
	}
}

func TestBatchDuplicateBadPropagates(t *testing.T) {
	p := New(Options{Workers: 2})
	pubs, msgs, sigs := batchFixture(1)
	sigs[0] = append([]byte(nil), sigs[0]...)
	sigs[0][5] ^= 0xff
	b := p.NewBatch(4)
	for rep := 0; rep < 4; rep++ {
		b.Add(pubs[0], msgs[0], sigs[0])
	}
	for i, ok := range b.Verify() {
		if ok {
			t.Fatalf("duplicate of a bad signature accepted at %d", i)
		}
	}
}

func TestBatchRejectsMalformedSizes(t *testing.T) {
	p := New(Options{Workers: 2})
	pubs, msgs, sigs := batchFixture(2)
	before := p.Stats()
	b := p.NewBatch(3)
	b.Add(pubs[0][:16], msgs[0], sigs[0]) // truncated key
	b.Add(pubs[1], msgs[1], sigs[1][:8])  // truncated signature
	b.Add(pubs[1], msgs[1], sigs[1])
	verdicts := b.Verify()
	if verdicts[0] || verdicts[1] {
		t.Fatalf("malformed inputs accepted: %v", verdicts)
	}
	if !verdicts[2] {
		t.Fatal("valid signature rejected alongside malformed ones")
	}
	if v := p.Stats().Verified - before.Verified; v != 1 {
		t.Fatalf("malformed inputs reached the curve: %d verifications, want 1", v)
	}
}

func TestBatchWithoutCache(t *testing.T) {
	p := New(Options{Workers: 2, CacheSize: -1})
	pubs, msgs, sigs := batchFixture(20)
	sigs[7] = append([]byte(nil), sigs[7]...)
	sigs[7][0] ^= 0xff
	b := p.NewBatch(20)
	for i := range pubs {
		b.Add(pubs[i], msgs[i], sigs[i])
	}
	for i, ok := range b.Verify() {
		if ok == (i == 7) {
			t.Fatalf("verdict[%d] = %v", i, ok)
		}
	}
}

func TestBatchVerifyInlineMatchesVerify(t *testing.T) {
	pubs, msgs, sigs := batchFixture(33)
	sigs[10] = append([]byte(nil), sigs[10]...)
	sigs[10][0] ^= 0xff
	build := func(p *Pool) *Batch {
		b := p.NewBatch(33)
		for i := range pubs {
			b.Add(pubs[i], msgs[i], sigs[i])
		}
		return b
	}
	pa := New(Options{Workers: 4})
	pb := New(Options{Workers: 4})
	va := build(pa).Verify()
	vb := build(pb).VerifyInline()
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("verdict[%d]: Verify %v, VerifyInline %v", i, va[i], vb[i])
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	p := New(Options{Workers: 2})
	if v := p.NewBatch(0).Verify(); v != nil {
		t.Fatalf("empty batch verdicts = %v, want nil", v)
	}
}

func TestBatchPopulatesCacheForLaterSingles(t *testing.T) {
	p := New(Options{Workers: 2})
	pubs, msgs, sigs := batchFixture(8)
	b := p.NewBatch(8)
	for i := range pubs {
		b.Add(pubs[i], msgs[i], sigs[i])
	}
	b.Verify()
	before := p.Stats().Verified
	for i := range pubs {
		if !p.VerifySig(pubs[i], msgs[i], sigs[i]) {
			t.Fatalf("VerifySig %d failed after batch", i)
		}
	}
	if v := p.Stats().Verified; v != before {
		t.Fatalf("batch results not cached: %d extra verifications", v-before)
	}
}
