package verify

import (
	"sync"
)

// cacheKey is the 32-byte digest binding (public key, message,
// signature); see cacheKeyFor.
type cacheKey [32]byte

// cacheShards spreads lock contention across independent LRU shards;
// the shard is picked from the key's first byte, which is uniformly
// distributed (the key is a SHA-256 digest).
const cacheShards = 16

// cache is a sharded LRU set of verified-signature keys.
type cache struct {
	shards [cacheShards]lruShard
}

func newCache(size int) *cache {
	per := size / cacheShards
	if per < 1 {
		per = 1
	}
	c := &cache{}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

func (c *cache) shard(k cacheKey) *lruShard { return &c.shards[int(k[0])%cacheShards] }

func (c *cache) contains(k cacheKey) bool { return c.shard(k).contains(k) }

func (c *cache) add(k cacheKey) { c.shard(k).add(k) }

// lruShard is one mutex-guarded LRU set over a slot-addressed node
// array: recency links are int32 slot indices instead of heap-allocated
// list elements, so once the shard fills, inserts and evictions recycle
// slots and allocate nothing — every verified signature passes through
// add on the hot path.
type lruShard struct {
	mu    sync.Mutex
	cap   int
	nodes []lruNode // grows on demand up to cap, then slots are recycled
	items map[cacheKey]int32
	head  int32 // most recent; -1 when empty
	tail  int32 // least recent; -1 when empty
}

type lruNode struct {
	key        cacheKey
	prev, next int32
}

func (s *lruShard) init(capacity int) {
	s.cap = capacity
	s.items = make(map[cacheKey]int32, capacity)
	s.head, s.tail = -1, -1
}

func (s *lruShard) unlink(i int32) {
	n := s.nodes[i]
	if n.prev >= 0 {
		s.nodes[n.prev].next = n.next
	} else {
		s.head = n.next
	}
	if n.next >= 0 {
		s.nodes[n.next].prev = n.prev
	} else {
		s.tail = n.prev
	}
}

func (s *lruShard) pushFront(i int32) {
	s.nodes[i].prev = -1
	s.nodes[i].next = s.head
	if s.head >= 0 {
		s.nodes[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}

func (s *lruShard) contains(k cacheKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.items[k]
	if ok && i != s.head {
		s.unlink(i)
		s.pushFront(i)
	}
	return ok
}

func (s *lruShard) add(k cacheKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.items[k]; ok {
		if i != s.head {
			s.unlink(i)
			s.pushFront(i)
		}
		return
	}
	var i int32
	if len(s.nodes) < s.cap {
		s.nodes = append(s.nodes, lruNode{})
		i = int32(len(s.nodes) - 1)
	} else {
		// Full: the least-recent slot is evicted and reused in place.
		i = s.tail
		s.unlink(i)
		delete(s.items, s.nodes[i].key)
	}
	s.nodes[i].key = k
	s.items[k] = i
	s.pushFront(i)
}
