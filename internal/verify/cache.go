package verify

import (
	"container/list"
	"sync"
)

// cacheKey is the 32-byte digest binding (public key, message,
// signature); see cacheKeyFor.
type cacheKey [32]byte

// cacheShards spreads lock contention across independent LRU shards;
// the shard is picked from the key's first byte, which is uniformly
// distributed (the key is a SHA-256 digest).
const cacheShards = 16

// cache is a sharded LRU set of verified-signature keys.
type cache struct {
	shards [cacheShards]lruShard
}

func newCache(size int) *cache {
	per := size / cacheShards
	if per < 1 {
		per = 1
	}
	c := &cache{}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

func (c *cache) shard(k cacheKey) *lruShard { return &c.shards[int(k[0])%cacheShards] }

func (c *cache) contains(k cacheKey) bool { return c.shard(k).contains(k) }

func (c *cache) add(k cacheKey) { c.shard(k).add(k) }

// lruShard is one mutex-guarded LRU set.
type lruShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are cacheKey
	items map[cacheKey]*list.Element
}

func (s *lruShard) init(capacity int) {
	s.cap = capacity
	s.order = list.New()
	s.items = make(map[cacheKey]*list.Element, capacity)
}

func (s *lruShard) contains(k cacheKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if ok {
		s.order.MoveToFront(el)
	}
	return ok
}

func (s *lruShard) add(k cacheKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.items[k] = s.order.PushFront(k)
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(cacheKey))
	}
}
