package verify

import (
	"crypto/ed25519"
)

// batchChunk is the aggregate-verify unit: pending signatures are
// verified in all-or-nothing chunks of this size, so one bad signature
// costs a bisection over its own chunk instead of degrading the whole
// batch, and chunks fan out across the pool's workers with one
// dispatch per chunk instead of one per signature.
const batchChunk = 16

// batchItem is one accumulated signature check.
type batchItem struct {
	pub ed25519.PublicKey
	msg []byte
	sig []byte
	key cacheKey
	bad bool // malformed key/signature size, rejected before crypto
}

// Batch accumulates signature checks and verifies them together — the
// accumulate-then-verify shape of ed25519consensus's BatchVerifier.
// The batch path layers three wins in front of the per-signature
// Ed25519 cost: the verified-signature cache screens the whole batch
// in one pass, identical (key, message, signature) tuples within the
// batch are verified once (gossip re-delivery, co-signature storms),
// and the remainder is verified in all-or-nothing chunks — one worker
// dispatch per chunk, with bisection isolating failures so a single
// bad signature cannot force per-signature fallback for everyone.
// The chunk primitive is pass/fail only, so a curve-level multiscalar
// backend can replace its internals without touching the bisection or
// the callers.
//
// A Batch is single-goroutine: Add everything, then call Verify (or
// VerifyInline from code already running on a pool worker) exactly
// once. Message and signature slices are retained until then.
type Batch struct {
	p     *Pool
	items []batchItem
}

// NewBatch returns an empty batch verifying through p, sized for
// capacity accumulated checks.
func (p *Pool) NewBatch(capacity int) *Batch {
	return &Batch{p: p, items: make([]batchItem, 0, capacity)}
}

// Add accumulates one signature check. Malformed key or signature
// sizes are recorded as failed verdicts without touching the cache or
// the curve, matching VerifySig.
func (b *Batch) Add(pub ed25519.PublicKey, msg, sig []byte) {
	it := batchItem{pub: pub, msg: msg, sig: sig}
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		it.bad = true
	}
	b.items = append(b.items, it)
}

// Len returns the number of accumulated checks.
func (b *Batch) Len() int { return len(b.items) }

// Verify resolves every accumulated check and returns one verdict per
// Add, in order. Chunks fan out across the pool's workers; like
// Pool.Each it must not be called from inside a pool task — leaf code
// uses VerifyInline.
func (b *Batch) Verify() []bool { return b.verify(true) }

// VerifyInline is Verify without worker fan-out: the whole batch runs
// on the calling goroutine. It is the form leaf tasks (e.g. warm
// chunks already executing on a pool worker) are allowed to use.
func (b *Batch) VerifyInline() []bool { return b.verify(false) }

// pending tracks one representative of a distinct signature tuple and
// the batch positions that duplicate it.
type pending struct {
	item int
	dups []int
}

func (b *Batch) verify(parallel bool) []bool {
	n := len(b.items)
	if n == 0 {
		return nil
	}
	verdicts := make([]bool, n)
	// Pass 1 — screen: resolve cache hits and collapse duplicate
	// tuples, leaving only distinct unverified signatures for the
	// chunked crypto pass.
	uniq := make([]pending, 0, n)
	var seen map[cacheKey]int
	if b.p.cache != nil {
		seen = make(map[cacheKey]int, n)
	}
	for i := range b.items {
		it := &b.items[i]
		if it.bad {
			continue
		}
		if b.p.cache == nil {
			uniq = append(uniq, pending{item: i})
			continue
		}
		it.key = cacheKeyFor(it.pub, it.msg, it.sig)
		if b.p.cache.contains(it.key) {
			b.p.hits.Add(1)
			verdicts[i] = true
			continue
		}
		b.p.misses.Add(1)
		if j, ok := seen[it.key]; ok {
			uniq[j].dups = append(uniq[j].dups, i)
			continue
		}
		seen[it.key] = len(uniq)
		uniq = append(uniq, pending{item: i})
	}
	// Pass 2 — chunked aggregate verify with bisection on failure.
	if len(uniq) > 0 {
		b.p.batched.Add(uint64(len(uniq)))
		nchunks := (len(uniq) + batchChunk - 1) / batchChunk
		if parallel && nchunks > 1 {
			b.p.Each(nchunks, func(ci int) {
				lo := ci * batchChunk
				hi := lo + batchChunk
				if hi > len(uniq) {
					hi = len(uniq)
				}
				b.resolveChunk(uniq[lo:hi], verdicts)
			})
		} else {
			for lo := 0; lo < len(uniq); lo += batchChunk {
				hi := lo + batchChunk
				if hi > len(uniq) {
					hi = len(uniq)
				}
				b.resolveChunk(uniq[lo:hi], verdicts)
			}
		}
	}
	// Pass 3 — propagate representative verdicts to their duplicates.
	for _, u := range uniq {
		for _, d := range u.dups {
			verdicts[d] = verdicts[u.item]
		}
	}
	return verdicts
}

// resolveChunk settles one chunk: aggregate-verify it whole, and on
// failure bisect until the bad signatures are pinpointed.
func (b *Batch) resolveChunk(chunk []pending, verdicts []bool) {
	if b.aggregateOK(chunk) {
		b.markValid(chunk, verdicts)
		return
	}
	b.bisect(chunk, verdicts)
}

// aggregateOK is the all-or-nothing chunk primitive: it reports only
// whether EVERY signature in the chunk verifies. The stdlib backend
// checks sequentially and aborts at the first failure; a multiscalar
// batch equation can replace this body wholesale because callers never
// learn which element failed — bisection recovers that.
func (b *Batch) aggregateOK(chunk []pending) bool {
	for _, u := range chunk {
		it := &b.items[u.item]
		b.p.verified.Add(1)
		if !ed25519.Verify(it.pub, it.msg, it.sig) {
			return false
		}
	}
	return true
}

// bisect splits a failed chunk and re-verifies the halves, recursing
// into whichever still fails; a single-element chunk's failure is
// final. Cost is logarithmic per bad signature while good signatures
// settle in their surviving half's single aggregate call.
func (b *Batch) bisect(chunk []pending, verdicts []bool) {
	if len(chunk) == 1 {
		// aggregateOK already failed this element; its verdict stays
		// false.
		return
	}
	mid := len(chunk) / 2
	for _, half := range [2][]pending{chunk[:mid], chunk[mid:]} {
		if b.aggregateOK(half) {
			b.markValid(half, verdicts)
			continue
		}
		b.bisect(half, verdicts)
	}
}

// markValid records a fully verified chunk: verdicts flip true and the
// cache learns every tuple.
func (b *Batch) markValid(chunk []pending, verdicts []bool) {
	for _, u := range chunk {
		verdicts[u.item] = true
		if b.p.cache != nil {
			b.p.cache.add(b.items[u.item].key)
		}
	}
}

// split partitions the accumulated items into sub-batches of at most
// size checks each, sharing the parent's pool. Used by Warm to
// dispatch chunk-sized leaf tasks.
func (b *Batch) split(size int) []*Batch {
	if len(b.items) == 0 {
		return nil
	}
	out := make([]*Batch, 0, (len(b.items)+size-1)/size)
	for lo := 0; lo < len(b.items); lo += size {
		hi := lo + size
		if hi > len(b.items) {
			hi = len(b.items)
		}
		out = append(out, &Batch{p: b.p, items: b.items[lo:hi]})
	}
	return out
}
