package verify

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
)

func testRegistry(t *testing.T) (*identity.Registry, *identity.KeyPair) {
	t.Helper()
	reg := identity.NewRegistry()
	kp := identity.Deterministic("alice", "verify-test")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	return reg, kp
}

func signedEntries(kp *identity.KeyPair, n int) []*block.Entry {
	out := make([]*block.Entry, n)
	for i := range out {
		out[i] = block.NewData(kp.Name(), []byte(fmt.Sprintf("payload-%d", i))).Sign(kp)
	}
	return out
}

func TestEntriesVerifiesBatch(t *testing.T) {
	reg, kp := testRegistry(t)
	for _, workers := range []int{1, 4} {
		p := New(Options{Workers: workers})
		if err := p.Entries(reg, signedEntries(kp, 33)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestEntriesReportsFirstBadIndex(t *testing.T) {
	reg, kp := testRegistry(t)
	entries := signedEntries(kp, 8)
	entries[5].Signature[0] ^= 0xff
	p := New(Options{Workers: 4})
	err := p.Entries(reg, entries)
	var ee *EntryError
	if !errors.As(err, &ee) {
		t.Fatalf("want *EntryError, got %v", err)
	}
	if ee.Index != 5 {
		t.Fatalf("bad index: got %d, want 5", ee.Index)
	}
	if !errors.Is(err, identity.ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestEntriesRejectsUnknownOwner(t *testing.T) {
	reg, _ := testRegistry(t)
	mallory := identity.Deterministic("mallory", "verify-test")
	e := block.NewData("mallory", []byte("x")).Sign(mallory)
	p := New(Options{Workers: 2})
	if err := p.Entries(reg, []*block.Entry{e}); !errors.Is(err, identity.ErrUnknownIdentity) {
		t.Fatalf("want ErrUnknownIdentity, got %v", err)
	}
}

func TestEntriesRejectsBadShape(t *testing.T) {
	reg, kp := testRegistry(t)
	e := block.NewData(kp.Name(), []byte("x")) // unsigned
	p := New(Options{Workers: 2})
	if err := p.Entries(reg, []*block.Entry{e}); !errors.Is(err, block.ErrUnsigned) {
		t.Fatalf("want ErrUnsigned, got %v", err)
	}
}

func TestCacheHitsOnReverification(t *testing.T) {
	reg, kp := testRegistry(t)
	entries := signedEntries(kp, 16)
	p := New(Options{Workers: 2, CacheSize: 1024})
	if err := p.Entries(reg, entries); err != nil {
		t.Fatal(err)
	}
	before := p.Stats()
	if err := p.Entries(reg, entries); err != nil {
		t.Fatal(err)
	}
	after := p.Stats()
	if got := after.CacheHits - before.CacheHits; got != 16 {
		t.Fatalf("second pass hits: got %d, want 16", got)
	}
	if after.Verified != before.Verified {
		t.Fatalf("second pass performed %d real verifications", after.Verified-before.Verified)
	}
}

func TestCacheDisabled(t *testing.T) {
	reg, kp := testRegistry(t)
	entries := signedEntries(kp, 4)
	p := New(Options{Workers: 1, CacheSize: -1})
	for i := 0; i < 3; i++ {
		if err := p.Entries(reg, entries); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Fatalf("disabled cache recorded probes: %+v", s)
	}
	if s.Verified != 12 {
		t.Fatalf("verified: got %d, want 12", s.Verified)
	}
}

func TestRejectsMalformedSignatureSizes(t *testing.T) {
	reg, kp := testRegistry(t)
	p := New(Options{Workers: 1})
	for _, n := range []int{1, 63, 65, 128} {
		e := block.NewData(kp.Name(), []byte("x")).Sign(kp)
		e.Signature = e.Signature[:0]
		e.Signature = append(e.Signature, make([]byte, n)...)
		if err := p.Entries(reg, []*block.Entry{e}); !errors.Is(err, identity.ErrBadSignature) {
			t.Fatalf("sig len %d: want ErrBadSignature, got %v", n, err)
		}
	}
}

func TestCacheDoesNotConfuseKeys(t *testing.T) {
	// Two registries map the same name to different keys: a signature
	// cached under one key must not satisfy the other.
	regA := identity.NewRegistry()
	regB := identity.NewRegistry()
	kpA := identity.Deterministic("alice", "seed-A")
	kpB := identity.Deterministic("alice", "seed-B")
	if err := regA.RegisterKey(kpA, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	if err := regB.RegisterKey(kpB, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	e := block.NewData("alice", []byte("payload")).Sign(kpA)
	p := New(Options{Workers: 1})
	if err := p.Entries(regA, []*block.Entry{e}); err != nil {
		t.Fatal(err)
	}
	if err := p.Entries(regB, []*block.Entry{e}); !errors.Is(err, identity.ErrBadSignature) {
		t.Fatalf("cross-registry: want ErrBadSignature, got %v", err)
	}
}

func TestLRUEvicts(t *testing.T) {
	c := newCache(cacheShards) // one slot per shard
	var keys []cacheKey
	for i := 0; i < 4; i++ {
		var k cacheKey
		k[0] = 0 // same shard
		k[1] = byte(i)
		keys = append(keys, k)
		c.add(k)
	}
	if c.contains(keys[0]) || c.contains(keys[1]) || c.contains(keys[2]) {
		t.Fatal("old keys not evicted from full shard")
	}
	if !c.contains(keys[3]) {
		t.Fatal("newest key evicted")
	}
}

func TestBlocksVerifiesCarriedEntries(t *testing.T) {
	reg, kp := testRegistry(t)
	entries := signedEntries(kp, 3)
	normal := block.NewNormal(1, 1, block.GenesisPrevHash, entries)
	carried := []block.CarriedEntry{{OriginBlock: 1, OriginTime: 1, EntryNumber: 0, Entry: entries[0]}}
	summary := block.NewSummary(2, 1, normal.Hash(), carried, nil)
	p := New(Options{Workers: 4})
	if err := p.Blocks(reg, []*block.Block{normal, summary}); err != nil {
		t.Fatal(err)
	}
	// Corrupt a carried signature: Blocks must catch it.
	bad := entries[0].Clone()
	bad.Signature[0] ^= 0xff
	summary2 := block.NewSummary(2, 1, normal.Hash(), []block.CarriedEntry{{OriginBlock: 1, OriginTime: 1, EntryNumber: 0, Entry: bad}}, nil)
	if err := p.Blocks(reg, []*block.Block{summary2}); !errors.Is(err, identity.ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestCloseStopsWorkersKeepsVerifying(t *testing.T) {
	reg, kp := testRegistry(t)
	entries := signedEntries(kp, 8)
	p := New(Options{Workers: 2})
	if err := p.Entries(reg, entries); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	// Verification still works after Close (inline on the caller).
	if err := p.Entries(reg, entries); err != nil {
		t.Fatalf("after close: %v", err)
	}
	s := p.Stats()
	if s.CacheHits == 0 {
		t.Fatal("cache not consulted after close")
	}
}

func TestConcurrentEntriesRace(t *testing.T) {
	reg, kp := testRegistry(t)
	entries := signedEntries(kp, 64)
	p := New(Options{Workers: 4, CacheSize: 128})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := p.Entries(reg, entries); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
