// Package verify implements the parallel signature-verification engine
// shared by every validation call site of the chain.
//
// Ed25519 verification dominates the append path at high producer counts
// (ROADMAP: "the dominant cost at high producer counts; embarrassingly
// parallel per entry"), and the layered write path legitimately checks
// the same signature more than once (BuildNormal validates a candidate,
// AppendBlock re-validates the sealed block; gossip re-validates what the
// mempool already screened). The engine removes both costs:
//
//   - a worker pool sized to GOMAXPROCS fans entry batches out so
//     independent signatures verify on all cores, outside any chain lock;
//   - a sharded LRU cache keyed by (public key, message, signature)
//     remembers signatures that already verified, so re-checks along the
//     pipeline — and identical entries arriving via gossip — cost one
//     hash instead of one scalar multiplication.
//
// Only successful verifications are cached, and the key binds the public
// key itself (not the owner name), so registries that map the same name
// to different keys can safely share a pool.
package verify
