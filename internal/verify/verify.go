package verify

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
)

// DefaultCacheSize is the cache capacity (in verified signatures) used
// when Options.CacheSize is 0.
const DefaultCacheSize = 1 << 14

// Options parameterize a Pool.
type Options struct {
	// Workers is the number of verification workers. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize is the verified-signature cache capacity. 0 means
	// DefaultCacheSize; negative disables the cache entirely (every
	// verification pays the full Ed25519 cost — the benchmark's
	// cache-off configuration).
	CacheSize int
}

// Stats is a snapshot of pool activity.
type Stats struct {
	// Workers is the pool size.
	Workers int
	// Busy is the number of workers executing a verification right now.
	Busy int
	// Verified counts Ed25519 verifications actually performed.
	Verified uint64
	// Batched counts signatures that reached the curve through the
	// batch path (chunked aggregate verification) rather than a
	// standalone VerifySig call. Batched ≤ Verified; the gap is the
	// single-signature traffic.
	Batched uint64
	// CacheHits counts verifications answered from the cache.
	CacheHits uint64
	// CacheMisses counts cache probes that fell through to Ed25519.
	CacheMisses uint64
	// Utilization is Busy/Workers at snapshot time.
	Utilization float64
}

// EntryError reports which entry of a batch failed verification.
type EntryError struct {
	// Index is the position of the failing entry in the batch.
	Index int
	// Err is the underlying shape or signature error.
	Err error
}

func (e *EntryError) Error() string { return fmt.Sprintf("entry %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *EntryError) Unwrap() error { return e.Err }

// Pool is a sharded worker-pool signature verifier with a verified-
// signature cache. Safe for concurrent use; the zero value is not usable,
// call New (or use Shared).
type Pool struct {
	workers int
	tasks   chan func()
	cache   *cache

	// closeMu guards closed: dispatch holds it shared around the
	// channel send so Close (exclusive) never closes the channel while
	// a send is in flight.
	closeMu sync.RWMutex
	closed  bool

	busy     atomic.Int64
	verified atomic.Uint64
	batched  atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
}

// New starts a verification pool.
func New(opts Options) *Pool {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		// Deep enough that a full entry batch can be in flight per
		// worker before submitters start helping inline.
		tasks: make(chan func(), workers*8),
	}
	if opts.CacheSize >= 0 {
		size := opts.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		p.cache = newCache(size)
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide default pool: GOMAXPROCS workers and
// the default cache. Chains that are not configured with their own pool
// verify through it, so summary re-computation on every node of a local
// cluster shares one cache.
func Shared() *Pool {
	sharedOnce.Do(func() { shared = New(Options{}) })
	return shared
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// HasCache reports whether the pool caches verified signatures. Warming
// work is only worth dispatching when it does.
func (p *Pool) HasCache() bool { return p.cache != nil }

// Stats returns a snapshot of pool activity.
func (p *Pool) Stats() Stats {
	s := Stats{
		Workers:     p.workers,
		Busy:        int(p.busy.Load()),
		Verified:    p.verified.Load(),
		Batched:     p.batched.Load(),
		CacheHits:   p.hits.Load(),
		CacheMisses: p.misses.Load(),
	}
	if s.Workers > 0 {
		s.Utilization = float64(s.Busy) / float64(s.Workers)
	}
	return s
}

// worker executes verification tasks for the life of the pool.
func (p *Pool) worker() {
	for fn := range p.tasks {
		p.busy.Add(1)
		fn()
		p.busy.Add(-1)
	}
}

// dispatch hands fn to a worker, or runs it inline when every worker is
// saturated — submitters help instead of queuing unboundedly, so the
// pool can never deadlock on its own intake. After Close, everything
// runs inline: callers keep working, just without parallelism.
func (p *Pool) dispatch(fn func()) {
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		fn()
		return
	}
	select {
	case p.tasks <- fn:
		p.closeMu.RUnlock()
	default:
		p.closeMu.RUnlock()
		fn()
	}
}

// Close stops the worker goroutines once queued tasks drain. Verifying
// through a closed pool stays correct — work simply runs on the caller.
// Do not close the Shared pool. Close is idempotent.
func (p *Pool) Close() {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.tasks)
}

// Each runs fn(i) for every i in [0, n) across the pool's workers and
// waits for all of them. It is the pool's generic fan-out primitive —
// signature batches, co-signature batches, and Merkle leaf hashing all
// route through it (it satisfies merkle.Runner). Must not be called
// from inside a pool task: a task that waits on other tasks can
// exhaust the workers and deadlock the pool.
func (p *Pool) Each(n int, fn func(int)) {
	switch {
	case n <= 0:
		return
	case n == 1:
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.dispatch(func() {
			defer wg.Done()
			fn(i)
		})
	}
	wg.Wait()
}

// cacheKeyScratchPool holds concat buffers for cacheKeyFor, so the two
// key computations per entry on the warm+seal path allocate nothing.
var cacheKeyScratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// cacheKeyFor binds public key, message, and signature into one cache
// key. Field lengths are framed so no (sig, msg) split can collide with
// another split of the same concatenation. Hashing costs ~100ns against
// the ~50µs Ed25519 verification it can save. The inputs are gathered
// into a pooled scratch buffer and hashed with one Sum256 call, which
// skips the heap-allocated hasher state of the streaming API.
func cacheKeyFor(pub ed25519.PublicKey, msg, sig []byte) cacheKey {
	bp := cacheKeyScratchPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, "seldel/verify/v1"...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(sig)))
	b = append(b, pub...)
	b = append(b, sig...)
	b = append(b, msg...)
	k := sha256.Sum256(b)
	*bp = b
	cacheKeyScratchPool.Put(bp)
	return k
}

// VerifySig checks one raw signature through the cache and pool
// counters. It does not parallelize (a single check has nothing to fan
// out) but shares the cache with batch verification. Malformed key or
// signature sizes are rejected before the cache is consulted.
func (p *Pool) VerifySig(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	var key cacheKey
	if p.cache != nil {
		key = cacheKeyFor(pub, msg, sig)
		if p.cache.contains(key) {
			p.hits.Add(1)
			return true
		}
		p.misses.Add(1)
	}
	p.verified.Add(1)
	if !ed25519.Verify(pub, msg, sig) {
		return false
	}
	if p.cache != nil {
		p.cache.add(key)
	}
	return true
}

// Entries verifies a batch of entries against reg: structural shape and
// owner signature for every entry. Shape checks and identity lookups
// run inline (they are nanoseconds against the microseconds of curve
// math); the surviving signatures are then resolved together through
// one Batch — cache screen, duplicate collapse, chunked aggregate
// verify across the pool's workers. The first failure (by batch
// position) is returned as an *EntryError. Chain-state-dependent rules
// (dependencies, marks) are not checked here — they belong under the
// chain lock.
func (p *Pool) Entries(reg *identity.Registry, entries []*block.Entry) error {
	switch len(entries) {
	case 0:
		return nil
	case 1:
		return p.verifyOne(reg, 0, entries[0])
	}
	errs := make([]error, len(entries))
	b := p.NewBatch(len(entries))
	idx := make([]int, 0, len(entries))
	for i, e := range entries {
		if err := e.CheckShape(); err != nil {
			errs[i] = &EntryError{Index: i, Err: err}
			continue
		}
		info, ok := reg.Lookup(e.Owner)
		if !ok {
			errs[i] = &EntryError{Index: i, Err: fmt.Errorf("%w: %q", identity.ErrUnknownIdentity, e.Owner)}
			continue
		}
		b.Add(info.Public, e.SigningBytes(), e.Signature)
		idx = append(idx, i)
	}
	for j, ok := range b.Verify() {
		if !ok {
			i := idx[j]
			errs[i] = &EntryError{Index: i, Err: fmt.Errorf("%w: signer %q", identity.ErrBadSignature, entries[i].Owner)}
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CoSigners batch-verifies the co-signatures of a deletion entry: each
// listed co-signer's Ed25519 signature over the cosigning bytes of the
// entry's target, in parallel across the pool and through the
// verified-signature cache. verdicts[i] reports whether e.CoSigners[i]
// is a known identity with a valid signature. This is the lock-free
// half of deletion authorization — the chain consumes the verdicts
// under its lock without touching a signature again.
func (p *Pool) CoSigners(reg *identity.Registry, e *block.Entry) []bool {
	n := len(e.CoSigners)
	if n == 0 {
		return nil
	}
	msg := block.CoSigningBytes(e.Target)
	verdicts := make([]bool, n)
	b := p.NewBatch(n)
	idx := make([]int, 0, n)
	for i, cs := range e.CoSigners {
		info, ok := reg.Lookup(cs.Name)
		if !ok {
			continue
		}
		b.Add(info.Public, msg, cs.Signature)
		idx = append(idx, i)
	}
	for j, ok := range b.Verify() {
		verdicts[idx[j]] = ok
	}
	return verdicts
}

// Warm pre-verifies entries, populating the cache so a later Entries
// call over the same batch resolves from hits. Deletion entries also
// warm their co-signatures, so request authorization at sealing time
// resolves from the cache too. Failures are ignored — the
// authoritative check happens at validation time. The signatures are
// collected into one batch and dispatched in chunk-sized sub-batches,
// each a leaf task resolving through VerifyInline (never a task that
// waits on other tasks), so warming cannot deadlock the pool and costs
// one dispatch per chunk instead of one per signature.
func (p *Pool) Warm(reg *identity.Registry, entries []*block.Entry) {
	// The overwhelmingly common shape is a producer submitting a single
	// data entry: one signature, no co-signers. Skip the batch machinery
	// — one dispatched closure, the signing bytes computed off the
	// submitter's goroutine, the cache filled through VerifySig.
	if len(entries) == 1 && entries[0].Kind == block.KindData {
		e := entries[0]
		if e.CheckShape() != nil {
			return
		}
		info, ok := reg.Lookup(e.Owner)
		if !ok {
			return
		}
		p.dispatch(func() { _ = p.VerifySig(info.Public, e.SigningBytes(), e.Signature) })
		return
	}
	b := p.NewBatch(len(entries))
	for _, e := range entries {
		// Shape failures and unknown signers are screened here for free;
		// the authoritative validation re-checks and reports them.
		if e.CheckShape() != nil {
			continue
		}
		if info, ok := reg.Lookup(e.Owner); ok {
			b.Add(info.Public, e.SigningBytes(), e.Signature)
		}
		if e.Kind != block.KindDeletion {
			continue
		}
		msg := block.CoSigningBytes(e.Target)
		for _, cs := range e.CoSigners {
			if info, ok := reg.Lookup(cs.Name); ok {
				b.Add(info.Public, msg, cs.Signature)
			}
		}
	}
	if b.Len() <= batchChunk {
		// One chunk: dispatch the batch itself instead of splitting.
		p.dispatch(func() { _ = b.VerifyInline() })
		return
	}
	for _, sub := range b.split(batchChunk) {
		sub := sub
		p.dispatch(func() { _ = sub.VerifyInline() })
	}
}

// verifyOne checks one entry's shape and owner signature.
func (p *Pool) verifyOne(reg *identity.Registry, idx int, e *block.Entry) error {
	if err := e.CheckShape(); err != nil {
		return &EntryError{Index: idx, Err: err}
	}
	info, ok := reg.Lookup(e.Owner)
	if !ok {
		return &EntryError{Index: idx, Err: fmt.Errorf("%w: %q", identity.ErrUnknownIdentity, e.Owner)}
	}
	if !p.VerifySig(info.Public, e.SigningBytes(), e.Signature) {
		return &EntryError{Index: idx, Err: fmt.Errorf("%w: signer %q", identity.ErrBadSignature, e.Owner)}
	}
	return nil
}

// Blocks verifies the entries of many blocks concurrently — the restore
// path: a whole persisted chain (or an adopted status quo) is re-checked
// with all cores before any of it is trusted. Summary blocks contribute
// their carried entries. Shape and identity screening run inline, then
// every signature across every block resolves through one Batch: the
// cache screens entries that summary blocks re-carry, and the chunked
// aggregate pass fans the remainder across the pool's workers. The
// first failing block (by slice position) is reported.
func (p *Pool) Blocks(reg *identity.Registry, blocks []*block.Block) error {
	type unit struct {
		blockNum uint64
		entryIdx int
		entry    *block.Entry
	}
	var units []unit
	for _, b := range blocks {
		for j, e := range blockEntries(b) {
			units = append(units, unit{b.Header.Number, j, e})
		}
	}
	errs := make([]error, len(units))
	b := p.NewBatch(len(units))
	idx := make([]int, 0, len(units))
	for i, u := range units {
		if err := u.entry.CheckShape(); err != nil {
			errs[i] = fmt.Errorf("block %d: %w", u.blockNum, &EntryError{Index: u.entryIdx, Err: err})
			continue
		}
		info, ok := reg.Lookup(u.entry.Owner)
		if !ok {
			errs[i] = fmt.Errorf("block %d: %w", u.blockNum, &EntryError{
				Index: u.entryIdx,
				Err:   fmt.Errorf("%w: %q", identity.ErrUnknownIdentity, u.entry.Owner),
			})
			continue
		}
		b.Add(info.Public, u.entry.SigningBytes(), u.entry.Signature)
		idx = append(idx, i)
	}
	for j, ok := range b.Verify() {
		if !ok {
			u := units[idx[j]]
			errs[idx[j]] = fmt.Errorf("block %d: %w", u.blockNum, &EntryError{
				Index: u.entryIdx,
				Err:   fmt.Errorf("%w: signer %q", identity.ErrBadSignature, u.entry.Owner),
			})
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// blockEntries collects the signed entries of a block: normal entries,
// or the entries carried inside a summary block.
func blockEntries(b *block.Block) []*block.Entry {
	if !b.IsSummary() {
		return b.Entries
	}
	if len(b.Carried) == 0 {
		return nil
	}
	out := make([]*block.Entry, len(b.Carried))
	for i, ce := range b.Carried {
		out[i] = ce.Entry
	}
	return out
}
