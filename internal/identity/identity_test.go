package identity

import (
	"errors"
	"testing"
)

func TestGenerateAndSign(t *testing.T) {
	kp, err := Generate("alpha")
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if kp.Name() != "alpha" {
		t.Errorf("Name = %q", kp.Name())
	}
	reg := NewRegistry()
	if err := reg.RegisterKey(kp, RoleUser); err != nil {
		t.Fatalf("RegisterKey: %v", err)
	}
	msg := []byte("login event")
	sig := kp.Sign(msg)
	if err := reg.Verify("alpha", msg, sig); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	kp := Deterministic("alpha", "t")
	reg := NewRegistry()
	if err := reg.RegisterKey(kp, RoleUser); err != nil {
		t.Fatal(err)
	}
	sig := kp.Sign([]byte("original"))
	if err := reg.Verify("alpha", []byte("tampered"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("Verify tampered = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	alpha := Deterministic("alpha", "t")
	bravo := Deterministic("bravo", "t")
	reg := NewRegistry()
	if err := reg.RegisterKey(alpha, RoleUser); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterKey(bravo, RoleUser); err != nil {
		t.Fatal(err)
	}
	msg := []byte("entry")
	sig := bravo.Sign(msg)
	if err := reg.Verify("alpha", msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("cross-signer Verify = %v, want ErrBadSignature", err)
	}
}

func TestVerifyUnknownIdentity(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Verify("ghost", []byte("m"), []byte("s")); !errors.Is(err, ErrUnknownIdentity) {
		t.Errorf("Verify unknown = %v, want ErrUnknownIdentity", err)
	}
}

func TestDeterministicIsReproducibleAndDomainSeparated(t *testing.T) {
	a1 := Deterministic("alpha", "seed")
	a2 := Deterministic("alpha", "seed")
	if !a1.Public().Equal(a2.Public()) {
		t.Error("same name+seed produced different keys")
	}
	b := Deterministic("bravo", "seed")
	if a1.Public().Equal(b.Public()) {
		t.Error("different names share a key")
	}
	other := Deterministic("alpha", "other-seed")
	if a1.Public().Equal(other.Public()) {
		t.Error("different seeds share a key")
	}
}

func TestRegistryDuplicate(t *testing.T) {
	reg := NewRegistry()
	kp := Deterministic("alpha", "t")
	if err := reg.RegisterKey(kp, RoleUser); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterKey(kp, RoleAdmin); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate register = %v, want ErrDuplicateName", err)
	}
}

func TestRegistryRejectsInvalidInputs(t *testing.T) {
	reg := NewRegistry()
	kp := Deterministic("alpha", "t")
	if err := reg.Register("x", kp.Public(), Role(99)); !errors.Is(err, ErrInvalidRole) {
		t.Errorf("invalid role = %v", err)
	}
	if err := reg.Register("x", []byte{1, 2}, RoleUser); !errors.Is(err, ErrInvalidPublicKey) {
		t.Errorf("short key = %v", err)
	}
}

func TestRoles(t *testing.T) {
	tests := []struct {
		role  Role
		str   string
		valid bool
	}{
		{RoleUser, "user", true},
		{RoleAdmin, "admin", true},
		{RoleMaster, "master", true},
		{Role(0), "role(0)", false},
		{Role(77), "role(77)", false},
	}
	for _, tt := range tests {
		if got := tt.role.String(); got != tt.str {
			t.Errorf("String(%d) = %q, want %q", tt.role, got, tt.str)
		}
		if got := tt.role.Valid(); got != tt.valid {
			t.Errorf("Valid(%d) = %v, want %v", tt.role, got, tt.valid)
		}
	}
	if !RoleMaster.AtLeast(RoleAdmin) || RoleUser.AtLeast(RoleAdmin) {
		t.Error("AtLeast ordering wrong")
	}
}

func TestCanActFor(t *testing.T) {
	reg := NewRegistry()
	for name, role := range map[string]Role{
		"alpha": RoleUser, "bravo": RoleUser, "admin": RoleAdmin, "quorum": RoleMaster,
	} {
		if err := reg.RegisterKey(Deterministic(name, "t"), role); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		requester, owner string
		want             bool
	}{
		{"alpha", "alpha", true},   // own entry
		{"alpha", "bravo", false},  // someone else's entry
		{"admin", "alpha", true},   // admin may act for anyone
		{"quorum", "bravo", true},  // master signature
		{"bravo", "quorum", false}, // user cannot act for master
	}
	for _, tt := range tests {
		got, err := reg.CanActFor(tt.requester, tt.owner)
		if err != nil {
			t.Fatalf("CanActFor(%s,%s): %v", tt.requester, tt.owner, err)
		}
		if got != tt.want {
			t.Errorf("CanActFor(%s,%s) = %v, want %v", tt.requester, tt.owner, got, tt.want)
		}
	}
	if _, err := reg.CanActFor("ghost", "alpha"); !errors.Is(err, ErrUnknownIdentity) {
		t.Errorf("unknown requester = %v", err)
	}
}

func TestNamesSortedAndLen(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"charlie", "alpha", "bravo"} {
		if err := reg.RegisterKey(Deterministic(n, "t"), RoleUser); err != nil {
			t.Fatal(err)
		}
	}
	names := reg.Names()
	want := []string{"alpha", "bravo", "charlie"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	if reg.Len() != 3 {
		t.Errorf("Len = %d", reg.Len())
	}
}

func TestRegistryCopiesPublicKey(t *testing.T) {
	reg := NewRegistry()
	kp := Deterministic("alpha", "t")
	pub := make([]byte, len(kp.Public()))
	copy(pub, kp.Public())
	if err := reg.Register("alpha", pub, RoleUser); err != nil {
		t.Fatal(err)
	}
	pub[0] ^= 0xFF // mutate caller's copy
	sig := kp.Sign([]byte("m"))
	if err := reg.Verify("alpha", []byte("m"), sig); err != nil {
		t.Errorf("registry aliased caller key slice: %v", err)
	}
}

func TestRoleOfAndLookup(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RegisterKey(Deterministic("alpha", "t"), RoleAdmin); err != nil {
		t.Fatal(err)
	}
	role, ok := reg.RoleOf("alpha")
	if !ok || role != RoleAdmin {
		t.Errorf("RoleOf = %v, %v", role, ok)
	}
	if _, ok := reg.RoleOf("missing"); ok {
		t.Error("RoleOf(missing) reported ok")
	}
	info, ok := reg.Lookup("alpha")
	if !ok || info.Name != "alpha" || info.Role != RoleAdmin {
		t.Errorf("Lookup = %+v, %v", info, ok)
	}
}
