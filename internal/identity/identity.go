// Package identity implements key management, signatures, and the
// role-based authorization model of §IV-D.1.
//
// Every data entry and every deletion request is signed by its submitter
// (Ed25519). The anchor-node quorum holds a shared "master" role with full
// administrative privileges; ordinary users may only act on their own
// entries. The paper's prototype used simplified string signatures; this
// implementation uses real asymmetric signatures, which is strictly
// stronger while preserving the same authorization semantics.
package identity

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Role is the privilege level of an identity in the role-based
// authorization concept of §IV-D.1.
type Role uint8

const (
	// RoleUser may submit entries and request deletion of its own entries.
	RoleUser Role = iota + 1
	// RoleAdmin may additionally request deletion of any user's entries.
	RoleAdmin
	// RoleMaster is the joint administrative role of the anchor-node
	// quorum ("master signature", §IV-D.1). It may approve any request.
	RoleMaster
)

// String returns the lowercase role name.
func (r Role) String() string {
	switch r {
	case RoleUser:
		return "user"
	case RoleAdmin:
		return "admin"
	case RoleMaster:
		return "master"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Valid reports whether r is a defined role.
func (r Role) Valid() bool { return r >= RoleUser && r <= RoleMaster }

// AtLeast reports whether r grants at least the privileges of min.
func (r Role) AtLeast(min Role) bool { return r >= min }

// KeyPair is a named Ed25519 signing key.
type KeyPair struct {
	name    string
	public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// Generate creates a fresh random key pair for the given participant name.
func Generate(name string) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("identity: generate key for %q: %w", name, err)
	}
	return &KeyPair{name: name, public: pub, private: priv}, nil
}

// Deterministic derives a reproducible key pair from the participant name
// and a domain seed. Used by tests and the deterministic experiments so
// runs are bit-for-bit repeatable.
func Deterministic(name, seed string) *KeyPair {
	sum := sha256.Sum256([]byte("seldel/identity/v1|" + seed + "|" + name))
	priv := ed25519.NewKeyFromSeed(sum[:])
	return &KeyPair{
		name:    name,
		public:  priv.Public().(ed25519.PublicKey),
		private: priv,
	}
}

// Name returns the participant name bound to the key.
func (k *KeyPair) Name() string { return k.name }

// Public returns the public key.
func (k *KeyPair) Public() ed25519.PublicKey { return k.public }

// Sign signs msg and returns a detached signature.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Errors returned by the registry.
var (
	ErrUnknownIdentity  = errors.New("identity: unknown identity")
	ErrDuplicateName    = errors.New("identity: name already registered")
	ErrBadSignature     = errors.New("identity: signature verification failed")
	ErrInvalidRole      = errors.New("identity: invalid role")
	ErrInvalidPublicKey = errors.New("identity: invalid public key")
)

// Info is the public record of a registered participant.
type Info struct {
	Name   string
	Public ed25519.PublicKey
	Role   Role
}

// Registry maps participant names to public keys and roles. It is the
// authorization database consulted by anchor nodes when validating entry
// signatures and deletion requests. Safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Info

	// Verified-signature cache, enabled by EnableVerifyCache. In
	// broadcast-heavy simulations many nodes share one registry and each
	// envelope is verified once per receiver; remembering (signer, msg,
	// sig) triples already proven valid turns n-1 of those n Ed25519
	// verifications into a hash lookup.
	cacheMu  sync.Mutex
	cache    map[[sha256.Size]byte]struct{}
	cacheCap int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Info)}
}

// Register adds a participant. Registering an existing name fails.
func (r *Registry) Register(name string, pub ed25519.PublicKey, role Role) error {
	if !role.Valid() {
		return fmt.Errorf("%w: %d", ErrInvalidRole, role)
	}
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: length %d", ErrInvalidPublicKey, len(pub))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	cp := make(ed25519.PublicKey, len(pub))
	copy(cp, pub)
	r.byName[name] = Info{Name: name, Public: cp, Role: role}
	return nil
}

// RegisterKey registers kp.Name() with the given role.
func (r *Registry) RegisterKey(kp *KeyPair, role Role) error {
	return r.Register(kp.Name(), kp.Public(), role)
}

// Lookup returns the public record for name.
func (r *Registry) Lookup(name string) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.byName[name]
	return info, ok
}

// RoleOf returns the role of name, or false if unregistered.
func (r *Registry) RoleOf(name string) (Role, bool) {
	info, ok := r.Lookup(name)
	return info.Role, ok
}

// EnableVerifyCache turns on a bounded cache of signatures this registry
// has already verified successfully. capacity bounds remembered entries;
// when full, the cache resets wholesale (the working set of a live
// cluster is recent traffic, so a periodic cold start is cheap).
// capacity <= 0 disables the cache again. Only successes are cached:
// a forged signature is re-checked — and re-rejected — every time.
func (r *Registry) EnableVerifyCache(capacity int) {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if capacity <= 0 {
		r.cache = nil
		r.cacheCap = 0
		return
	}
	r.cache = make(map[[sha256.Size]byte]struct{}, capacity)
	r.cacheCap = capacity
}

// verifyCacheKey binds signer, message, and signature into one digest.
// Length prefixes keep (name, msg) concatenation unambiguous.
func verifyCacheKey(name string, msg, sig []byte) [sha256.Size]byte {
	h := sha256.New()
	var n [8]byte
	n[0] = byte(len(name))
	h.Write(n[:1])
	h.Write([]byte(name))
	for i, l := 0, len(msg); i < 8; i++ {
		n[i] = byte(l >> (8 * i))
	}
	h.Write(n[:])
	h.Write(msg)
	h.Write(sig)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Verify checks that sig is a valid signature by name over msg.
func (r *Registry) Verify(name string, msg, sig []byte) error {
	info, ok := r.Lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownIdentity, name)
	}
	r.cacheMu.Lock()
	enabled := r.cache != nil
	r.cacheMu.Unlock()
	var key [sha256.Size]byte
	if enabled {
		key = verifyCacheKey(name, msg, sig)
		r.cacheMu.Lock()
		_, hit := r.cache[key]
		r.cacheMu.Unlock()
		if hit {
			return nil
		}
	}
	if !ed25519.Verify(info.Public, msg, sig) {
		return fmt.Errorf("%w: signer %q", ErrBadSignature, name)
	}
	if enabled {
		r.cacheMu.Lock()
		if r.cache != nil {
			if len(r.cache) >= r.cacheCap {
				r.cache = make(map[[sha256.Size]byte]struct{}, r.cacheCap)
			}
			r.cache[key] = struct{}{}
		}
		r.cacheMu.Unlock()
	}
	return nil
}

// Names returns all registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered participants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// CanActFor implements the paper's authorization rule (§IV-D.1): a
// requester may act on an entry if it owns the entry, or if its role is
// Admin or Master ("full administrative privileges").
func (r *Registry) CanActFor(requester, owner string) (bool, error) {
	info, ok := r.Lookup(requester)
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownIdentity, requester)
	}
	if requester == owner {
		return true, nil
	}
	return info.Role.AtLeast(RoleAdmin), nil
}
