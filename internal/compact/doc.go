// Package compact executes the physical side of selective deletion in
// the background.
//
// When a summary block shrinks the chain, the logical truncation — the
// marker shift, the entry-index sweep, and the carried-entry-ledger
// prune — must happen atomically with the append (later validations
// depend on it). The *physical* work does not: releasing the cut block
// memory, sweeping dead dependency edges, and pruning the persistent
// store (file unlinks, the dominant latency) only reclaim resources.
// The Compactor takes that work off the append path: truncation events
// are staged in order and executed by one background goroutine, with a
// Wait barrier for deterministic tests and experiments.
//
// The intake (TryEnqueue) never blocks and takes only the compactor's
// own mutex, so the chain stages events while still holding its lock —
// that is what guarantees events execute in marker order even with
// concurrent appenders. The staging queue is unbounded: truncations
// are rare relative to appends and events are a few words each.
package compact
