package compact

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestEventsExecuteInOrder(t *testing.T) {
	var mu sync.Mutex
	var got []uint64
	k := New(func(ev Event) {
		mu.Lock()
		got = append(got, ev.NewMarker)
		mu.Unlock()
	}, Options{})
	for i := uint64(1); i <= 20; i++ {
		k.Enqueue(Event{OldMarker: i - 1, NewMarker: i, Blocks: 1, Bytes: 10})
	}
	if err := k.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 20 {
		t.Fatalf("executed %d events, want 20", len(got))
	}
	for i, m := range got {
		if m != uint64(i+1) {
			t.Fatalf("event %d executed marker %d — out of order", i, m)
		}
	}
}

func TestWaitBarriersOnPriorEvents(t *testing.T) {
	release := make(chan struct{})
	var done sync.WaitGroup
	done.Add(1)
	k := New(func(Event) {
		<-release
		done.Done()
	}, Options{})
	defer k.Close()
	k.Enqueue(Event{NewMarker: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := k.Wait(ctx); err == nil {
		t.Fatal("Wait returned before the pending event executed")
	}
	close(release)
	if err := k.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	done.Wait()
	if s := k.Stats(); s.Truncations != 1 || s.LastMarker != 3 {
		t.Errorf("stats after barrier: %+v", s)
	}
}

func TestCloseDrainsAndRunsInlineAfter(t *testing.T) {
	var mu sync.Mutex
	n := 0
	k := New(func(Event) {
		mu.Lock()
		n++
		mu.Unlock()
	}, Options{})
	k.Enqueue(Event{NewMarker: 1, Blocks: 2, Bytes: 7})
	k.Close()
	k.Close() // idempotent
	mu.Lock()
	if n != 1 {
		t.Fatalf("Close did not drain: %d events ran", n)
	}
	mu.Unlock()
	// Late events run inline on the caller.
	k.Enqueue(Event{NewMarker: 2, Blocks: 1, Bytes: 3})
	mu.Lock()
	if n != 2 {
		t.Fatalf("post-Close Enqueue did not run inline: %d", n)
	}
	mu.Unlock()
	if err := k.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	if s.Truncations != 2 || s.BlocksCompacted != 3 || s.BytesReclaimed != 10 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSynchronousMode(t *testing.T) {
	n := 0
	k := New(func(Event) { n++ }, Options{Synchronous: true})
	if k.TryEnqueue(Event{NewMarker: 5}) {
		t.Fatal("TryEnqueue accepted in synchronous mode")
	}
	k.Enqueue(Event{NewMarker: 5})
	if n != 1 {
		t.Fatal("synchronous Enqueue did not run inline")
	}
	if err := k.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	k.Close()
	if s := k.Stats(); !s.Synchronous || s.Truncations != 1 || s.LastMarker != 5 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTryEnqueueRefusedAfterClose(t *testing.T) {
	k := New(func(Event) {}, Options{})
	k.Close()
	if k.TryEnqueue(Event{NewMarker: 1}) {
		t.Fatal("TryEnqueue accepted after Close")
	}
	// Enqueue still executes inline so cleanup is never lost.
	k.Enqueue(Event{NewMarker: 1, Blocks: 1})
	if s := k.Stats(); s.Truncations != 1 || s.BlocksCompacted != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestOrderUnderConcurrentStagers pins the ordering contract the chain
// relies on: stagers that serialize their TryEnqueue calls (the chain
// stages under its lock) observe strictly FIFO execution even while
// the runner is busy.
func TestOrderUnderConcurrentStagers(t *testing.T) {
	var mu sync.Mutex
	var got []uint64
	slow := make(chan struct{})
	k := New(func(ev Event) {
		<-slow
		mu.Lock()
		got = append(got, ev.NewMarker)
		mu.Unlock()
	}, Options{})
	defer k.Close()
	var stage sync.Mutex // stands in for Chain.mu
	var wg sync.WaitGroup
	next := uint64(0)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				stage.Lock()
				next++
				if !k.TryEnqueue(Event{NewMarker: next}) {
					t.Error("TryEnqueue refused while open")
				}
				stage.Unlock()
			}
		}()
	}
	close(slow)
	wg.Wait()
	if err := k.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 400 {
		t.Fatalf("executed %d events, want 400", len(got))
	}
	for i, m := range got {
		if m != uint64(i+1) {
			t.Fatalf("event %d executed marker %d — out of order", i, m)
		}
	}
}
