package compact

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/seldel/seldel/internal/manifest"
)

// Event is one executed logical truncation whose physical work is
// pending: the marker moved from OldMarker to NewMarker, cutting Blocks
// blocks totalling Bytes of canonical encoding.
type Event struct {
	OldMarker, NewMarker uint64
	Blocks               uint64
	Bytes                int64
	// Record is the deletion-manifest record describing this truncation
	// (what was cut, which marks executed, under whose authority), built
	// by the chain under the append lock while the cut blocks were still
	// reachable. Listeners that persist an audit trail consume it; nil
	// on events predating the manifest subsystem.
	Record *manifest.Record
}

// Options parameterize a Compactor.
type Options struct {
	// Queue is an initial capacity hint for the pending-event staging
	// buffer (it grows as needed). 0 means DefaultQueue.
	Queue int
	// Synchronous disables the background goroutine: every event runs
	// inline in Enqueue, on the caller's goroutine — the pre-compactor
	// behaviour, for deployments that want store pruning to complete
	// before the append returns.
	Synchronous bool
}

// DefaultQueue is the staging-buffer capacity hint used when
// Options.Queue is 0.
const DefaultQueue = 16

// Stats is a snapshot of compactor activity — the CompactionStats
// gauges surfaced through the chain's PipelineStats.
type Stats struct {
	// Pending is the number of truncation events staged but not yet
	// executed.
	Pending int
	// Truncations counts executed truncation events.
	Truncations uint64
	// BlocksCompacted counts blocks whose physical cleanup ran.
	BlocksCompacted uint64
	// BytesReclaimed totals the canonical encoded size of compacted
	// blocks.
	BytesReclaimed int64
	// LastMarker is the new Genesis marker of the last executed event
	// (0 before any truncation).
	LastMarker uint64
	// Synchronous reports inline (non-background) execution.
	Synchronous bool
}

// item is one staged element: a truncation event, or a Wait barrier.
type item struct {
	ev      Event
	barrier chan struct{}
}

// Compactor owns the background execution of truncation events. The
// zero value is not usable; call New.
type Compactor struct {
	apply func(Event)
	sync  bool

	// mu guards queue, pending, and closed. Never held while apply
	// runs, so apply may take locks of its own (the chain lock).
	mu      sync.Mutex
	queue   []item
	pending int
	closed  bool

	// kick wakes the runner when the queue goes non-empty.
	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	truncations atomic.Uint64
	blocks      atomic.Uint64
	bytes       atomic.Int64
	lastMarker  atomic.Uint64
}

// New starts a compactor executing events through apply. In
// synchronous mode no goroutine is started and Enqueue runs apply
// inline.
func New(apply func(Event), opts Options) *Compactor {
	queue := opts.Queue
	if queue <= 0 {
		queue = DefaultQueue
	}
	k := &Compactor{
		apply: apply,
		sync:  opts.Synchronous,
		queue: make([]item, 0, queue),
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if k.sync {
		close(k.done)
		return k
	}
	go k.run()
	return k
}

// TryEnqueue stages one truncation event for background execution and
// reports whether it was accepted. It never blocks and never runs
// apply itself, so callers may hold locks that apply needs — the chain
// stages under its own lock, which is what orders events. It returns
// false in synchronous mode or after Close; the caller must then run
// the event via Enqueue once it holds nothing apply requires.
func (k *Compactor) TryEnqueue(ev Event) bool {
	if k.sync {
		return false
	}
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return false
	}
	k.queue = append(k.queue, item{ev: ev})
	k.pending++
	k.mu.Unlock()
	select {
	case k.kick <- struct{}{}:
	default:
	}
	return true
}

// Enqueue hands one truncation event to the compactor, executing it
// inline when the background runner is unavailable (synchronous mode,
// or after Close). Callers must not hold locks that apply takes.
func (k *Compactor) Enqueue(ev Event) {
	if !k.TryEnqueue(ev) {
		k.execute(ev)
	}
}

// Wait blocks until every event staged before the call has executed,
// or ctx is cancelled. It is the determinism barrier for tests and
// experiments that assert on post-truncation state (store contents,
// reclaimed bytes).
func (k *Compactor) Wait(ctx context.Context) error {
	if k.sync {
		return nil
	}
	barrier := make(chan struct{})
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		<-k.done
		return nil
	}
	k.queue = append(k.queue, item{barrier: barrier})
	k.mu.Unlock()
	select {
	case k.kick <- struct{}{}:
	default:
	}
	select {
	case <-barrier:
		return nil
	case <-k.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the staging queue (every staged event still executes)
// and stops the background goroutine. Enqueue afterwards runs events
// inline. Close is idempotent; concurrent calls block until the drain
// completes.
func (k *Compactor) Close() {
	if k.sync {
		return
	}
	k.mu.Lock()
	already := k.closed
	k.closed = true
	k.mu.Unlock()
	if !already {
		close(k.quit)
	}
	<-k.done
}

// Stats returns a snapshot of compactor activity.
func (k *Compactor) Stats() Stats {
	k.mu.Lock()
	pending := k.pending
	k.mu.Unlock()
	return Stats{
		Pending:         pending,
		Truncations:     k.truncations.Load(),
		BlocksCompacted: k.blocks.Load(),
		BytesReclaimed:  k.bytes.Load(),
		LastMarker:      k.lastMarker.Load(),
		Synchronous:     k.sync,
	}
}

// run executes staged items until Close, then drains. Items are popped
// one at a time so apply never runs under the compactor's mutex.
func (k *Compactor) run() {
	defer close(k.done)
	for {
		select {
		case <-k.kick:
			k.drain()
		case <-k.quit:
			// Close set closed under the mutex, so nothing new can be
			// staged; what is queued is all there is.
			k.drain()
			return
		}
	}
}

// drain pops and executes until the queue is empty.
func (k *Compactor) drain() {
	for {
		k.mu.Lock()
		if len(k.queue) == 0 {
			k.mu.Unlock()
			return
		}
		it := k.queue[0]
		k.queue[0] = item{}
		k.queue = k.queue[1:]
		if it.barrier == nil {
			k.pending--
		}
		k.mu.Unlock()
		if it.barrier != nil {
			close(it.barrier)
			continue
		}
		k.execute(it.ev)
	}
}

func (k *Compactor) execute(ev Event) {
	k.apply(ev)
	k.truncations.Add(1)
	k.blocks.Add(ev.Blocks)
	k.bytes.Add(ev.Bytes)
	k.lastMarker.Store(ev.NewMarker)
}
