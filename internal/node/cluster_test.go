package node

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/client"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/wire"
)

// cluster bundles a simulated anchor-node deployment.
type cluster struct {
	net      *netsim.Network
	registry *identity.Registry
	nodes    []*Node
	keys     map[string]*identity.KeyPair
}

// newCluster builds n anchor nodes on a zero-latency network plus user
// keys for the given participants.
func newCluster(t *testing.T, n int, users ...string) *cluster {
	t.Helper()
	cl := &cluster{
		net:      netsim.New(netsim.Config{}),
		registry: identity.NewRegistry(),
		keys:     make(map[string]*identity.KeyPair),
	}
	t.Cleanup(cl.net.Close)

	var anchorNames []string
	for i := 0; i < n; i++ {
		anchorNames = append(anchorNames, fmt.Sprintf("anchor-%d", i))
	}
	quorum, err := consensus.NewQuorum(anchorNames)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range anchorNames {
		kp := identity.Deterministic(name, "cluster-test")
		if err := cl.registry.RegisterKey(kp, identity.RoleMaster); err != nil {
			t.Fatal(err)
		}
		cl.keys[name] = kp
	}
	for _, u := range users {
		kp := identity.Deterministic(u, "cluster-test")
		if err := cl.registry.RegisterKey(kp, identity.RoleUser); err != nil {
			t.Fatal(err)
		}
		cl.keys[u] = kp
	}
	for _, name := range anchorNames {
		nd, err := New(Config{
			Key: cl.keys[name],
			Chain: chain.Config{
				SequenceLength: 3,
				MaxSequences:   2,
				Shrink:         chain.ShrinkAllButNewest,
				Registry:       cl.registry,
				Clock:          simclock.NewLogical(0),
			},
			Quorum:  quorum,
			Network: cl.net,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		cl.nodes = append(cl.nodes, nd)
	}
	return cl
}

func (cl *cluster) anchorNames() []string {
	out := make([]string, len(cl.nodes))
	for i, n := range cl.nodes {
		out[i] = n.Name()
	}
	return out
}

// propose drives one block proposal through node 0 and waits for the
// network to settle.
func (cl *cluster) propose(t *testing.T) *block.Block {
	t.Helper()
	b, err := cl.nodes[0].Propose()
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	cl.net.Flush()
	return b
}

func (cl *cluster) headsAgree() bool {
	h := cl.nodes[0].Chain().HeadHash()
	for _, n := range cl.nodes[1:] {
		if n.Chain().HeadHash() != h {
			return false
		}
	}
	return true
}

func TestClusterConvergence(t *testing.T) {
	cl := newCluster(t, 3, "alpha")
	alpha := cl.keys["alpha"]
	for i := 0; i < 10; i++ {
		e := block.NewData("alpha", []byte(fmt.Sprintf("entry-%d", i))).Sign(alpha)
		cl.nodes[0].SubmitLocal(e)
		cl.net.Flush()
		cl.propose(t)
	}
	if !cl.headsAgree() {
		t.Fatal("cluster heads diverged")
	}
	// Everyone crossed a merge cycle with the same marker.
	m := cl.nodes[0].Chain().Marker()
	if m == 0 {
		t.Error("no merge happened in 10 blocks")
	}
	for _, n := range cl.nodes {
		if n.Chain().Marker() != m {
			t.Errorf("%s marker %d, want %d", n.Name(), n.Chain().Marker(), m)
		}
		if n.Forked() {
			t.Errorf("%s reports forked", n.Name())
		}
		if err := n.Chain().VerifyIntegrity(); err != nil {
			t.Errorf("%s integrity: %v", n.Name(), err)
		}
	}
}

func TestSummaryDeterminismAcrossNodes(t *testing.T) {
	// E11: every node builds the summary block itself; the gossiped vote
	// only confirms the hash. After convergence all summary blocks are
	// bit-identical.
	cl := newCluster(t, 4, "alpha")
	alpha := cl.keys["alpha"]
	for i := 0; i < 6; i++ {
		e := block.NewData("alpha", []byte(fmt.Sprintf("p%d", i))).Sign(alpha)
		cl.nodes[0].SubmitLocal(e)
		cl.net.Flush()
		cl.propose(t)
	}
	ref := cl.nodes[0].Chain().Blocks()
	for _, n := range cl.nodes[1:] {
		blocks := n.Chain().Blocks()
		if len(blocks) != len(ref) {
			t.Fatalf("%s has %d live blocks, want %d", n.Name(), len(blocks), len(ref))
		}
		for i, b := range blocks {
			if b.Hash() != ref[i].Hash() {
				t.Errorf("%s block %d differs", n.Name(), b.Header.Number)
			}
		}
	}
}

func TestForkOnCorruptedSummary(t *testing.T) {
	// E11: a node with corrupted deletion state computes a different
	// summary, loses the vote, and flags itself forked; the honest
	// majority proceeds.
	cl := newCluster(t, 3, "alpha")
	alpha := cl.keys["alpha"]
	e := block.NewData("alpha", []byte("victim")).Sign(alpha)
	cl.nodes[0].SubmitLocal(e)
	cl.net.Flush()
	cl.propose(t) // block 1 + summary 2 (clean)

	// Corrupt node 2: it believes entry 1/0 is marked for deletion.
	cl.nodes[2].CorruptForTest(block.Ref{Block: 1, Entry: 0})

	// Drive to the next merge, where the corrupted mark changes the
	// summary content (entry not carried → different hash).
	for i := 0; i < 4; i++ {
		e := block.NewData("alpha", []byte(fmt.Sprintf("n%d", i))).Sign(alpha)
		cl.nodes[0].SubmitLocal(e)
		cl.net.Flush()
		cl.propose(t)
	}
	if !cl.nodes[2].Forked() {
		t.Error("corrupted node did not detect its fork")
	}
	if cl.nodes[0].Forked() || cl.nodes[1].Forked() {
		t.Error("honest node reports forked")
	}
	if cl.nodes[0].Chain().HeadHash() != cl.nodes[1].Chain().HeadHash() {
		t.Error("honest nodes diverged")
	}
	// The honest chain still carries the victim entry.
	if _, _, ok := cl.nodes[0].Chain().Lookup(block.Ref{Block: 1, Entry: 0}); !ok {
		t.Error("honest chain lost the entry")
	}
}

func TestClientStatusMajority(t *testing.T) {
	cl := newCluster(t, 3, "alpha", "user")
	alpha := cl.keys["alpha"]
	cli, err := client.New(cl.keys["user"], cl.registry, cl.net, cl.anchorNames())
	if err != nil {
		t.Fatal(err)
	}
	cli.SetTimeout(500 * time.Millisecond)

	for i := 0; i < 4; i++ {
		e := block.NewData("alpha", []byte(fmt.Sprintf("p%d", i))).Sign(alpha)
		cl.nodes[0].SubmitLocal(e)
		cl.net.Flush()
		cl.propose(t)
	}
	status, err := cli.QueryStatus()
	if err != nil {
		t.Fatalf("QueryStatus: %v", err)
	}
	if status.Agreeing != 3 || status.Queried != 3 {
		t.Errorf("status agreement %d/%d, want 3/3", status.Agreeing, status.Queried)
	}
	if status.HeadHash != cl.nodes[0].Chain().HeadHash() {
		t.Error("status head differs from chain head")
	}
	if status.Marker != cl.nodes[0].Chain().Marker() {
		t.Error("status marker differs")
	}
}

func TestClientSubmitAndVerifiedLookup(t *testing.T) {
	cl := newCluster(t, 3, "user")
	cli, err := client.New(cl.keys["user"], cl.registry, cl.net, cl.anchorNames())
	if err != nil {
		t.Fatal(err)
	}
	cli.SetTimeout(500 * time.Millisecond)

	if err := cli.Submit(context.Background(), cli.NewDataEntry([]byte("hello chain"))); err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	b := cl.propose(t)
	if len(b.Entries) != 1 {
		t.Fatalf("proposed block has %d entries", len(b.Entries))
	}
	ref := block.Ref{Block: b.Header.Number, Entry: 0}

	got, err := cli.Lookup(cl.nodes[1].Name(), ref)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if string(got.Entry.Payload) != "hello chain" {
		t.Errorf("payload = %q", got.Entry.Payload)
	}
	if got.Entry.Owner != "user" {
		t.Errorf("owner = %q", got.Entry.Owner)
	}
	// Drive past a merge so the entry migrates into a summary block, then
	// look it up again — same ref, now carried.
	for i := 0; i < 8; i++ {
		cl.nodes[0].SubmitLocal(block.NewData("user", []byte(fmt.Sprintf("n%d", i))).Sign(cl.keys["user"]))
		cl.net.Flush()
		cl.propose(t)
	}
	got2, err := cli.Lookup(cl.nodes[2].Name(), ref)
	if err != nil {
		t.Fatalf("Lookup after merge: %v", err)
	}
	if !got2.Carried {
		t.Error("entry should be carried after merge")
	}
	if string(got2.Entry.Payload) != "hello chain" {
		t.Errorf("payload after merge = %q", got2.Entry.Payload)
	}
}

func TestClientLookupDeletedEntry(t *testing.T) {
	cl := newCluster(t, 3, "user")
	cli, err := client.New(cl.keys["user"], cl.registry, cl.net, cl.anchorNames())
	if err != nil {
		t.Fatal(err)
	}
	cli.SetTimeout(500 * time.Millisecond)

	if err := cli.Submit(context.Background(), cli.NewDataEntry([]byte("to be forgotten"))); err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	b := cl.propose(t)
	ref := block.Ref{Block: b.Header.Number, Entry: 0}

	if err := cli.Submit(context.Background(), cli.NewDeletionRequest(ref)); err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	cl.propose(t)
	// Drive until physically forgotten everywhere.
	for i := 0; i < 10; i++ {
		cl.nodes[0].SubmitLocal(block.NewData("user", []byte(fmt.Sprintf("n%d", i))).Sign(cl.keys["user"]))
		cl.net.Flush()
		cl.propose(t)
	}
	if _, err := cli.Lookup(cl.nodes[0].Name(), ref); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("Lookup deleted = %v, want ErrNotFound", err)
	}
	for _, n := range cl.nodes {
		if _, _, ok := n.Chain().Lookup(ref); ok {
			t.Errorf("%s still resolves the deleted entry", n.Name())
		}
	}
}

func TestPartitionIsolatesNode(t *testing.T) {
	// §V-B.4 node isolation: a partitioned anchor stops receiving blocks;
	// the majority continues. Clients in the majority partition still get
	// a consistent answer.
	cl := newCluster(t, 3, "alpha", "user")
	alpha := cl.keys["alpha"]
	cli, err := client.New(cl.keys["user"], cl.registry, cl.net, cl.anchorNames())
	if err != nil {
		t.Fatal(err)
	}
	cli.SetTimeout(200 * time.Millisecond)

	cl.nodes[0].SubmitLocal(block.NewData("alpha", []byte("before")).Sign(alpha))
	cl.net.Flush()
	cl.propose(t)

	// Isolate anchor-2 (the client stays with the majority).
	cl.net.Partition([]string{cl.nodes[2].Name()})
	for i := 0; i < 3; i++ {
		cl.nodes[0].SubmitLocal(block.NewData("alpha", []byte(fmt.Sprintf("during-%d", i))).Sign(alpha))
		cl.net.Flush()
		cl.propose(t)
	}
	if cl.nodes[2].Chain().Head().Number >= cl.nodes[0].Chain().Head().Number {
		t.Error("isolated node kept up impossibly")
	}
	status, err := cli.QueryStatus()
	if err != nil {
		t.Fatalf("QueryStatus during partition: %v", err)
	}
	if status.Agreeing < 2 {
		t.Errorf("majority too small: %d", status.Agreeing)
	}
	if status.HeadNumber != cl.nodes[0].Chain().Head().Number {
		t.Error("client status does not match majority head")
	}
}

func TestNodeConfigDefaults(t *testing.T) {
	reg := identity.NewRegistry()
	kp := identity.Deterministic("solo", "cluster-test")
	if err := reg.RegisterKey(kp, identity.RoleMaster); err != nil {
		t.Fatal(err)
	}
	// No network, no quorum, no engine: single-node operation.
	nd, err := New(Config{
		Key: kp,
		Chain: chain.Config{
			SequenceLength: 3,
			Registry:       reg,
			Clock:          simclock.NewLogical(0),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	nd.AddToMempool(block.NewData("solo", []byte("x")).Sign(kp))
	if nd.MempoolSize() != 1 {
		t.Errorf("MempoolSize = %d", nd.MempoolSize())
	}
	if _, err := nd.Propose(); err != nil {
		t.Fatalf("solo propose: %v", err)
	}
	// Single-member quorum self-approves the summary.
	if nd.Chain().Head().Number != 2 {
		t.Errorf("head = %d, want 2 (normal + self-approved summary)", nd.Chain().Head().Number)
	}
	if _, err := New(Config{}); err == nil {
		t.Error("node without key accepted")
	}
}

func TestMempoolDeduplicatesAndValidates(t *testing.T) {
	cl := newCluster(t, 1, "alpha")
	nd := cl.nodes[0]
	alpha := cl.keys["alpha"]
	e := block.NewData("alpha", []byte("once")).Sign(alpha)
	nd.AddToMempool(e)
	nd.AddToMempool(e)                                                               // duplicate
	nd.AddToMempool(block.NewData("alpha", []byte("unsigned-entry")))                // unsigned
	nd.AddToMempool(block.NewData("stranger", []byte("who")).Sign(alpha))            // wrong signer
	nd.AddToMempool(block.NewData("alpha", []byte("ok too")).Sign(cl.keys["alpha"])) //nolint:staticcheck // same key, distinct payload
	if got := nd.MempoolSize(); got != 2 {
		t.Errorf("MempoolSize = %d, want 2", got)
	}
}

func TestPartitionHealCatchUpIncremental(t *testing.T) {
	// A node isolated for less than a full retention cycle re-syncs
	// incrementally from the first gossiped block after the heal.
	cl := newCluster(t, 3, "alpha")
	alpha := cl.keys["alpha"]
	drive := func(payload string) {
		cl.nodes[0].SubmitLocal(block.NewData("alpha", []byte(payload)).Sign(alpha))
		cl.net.Flush()
		cl.propose(t)
	}
	drive("before")
	cl.net.Partition([]string{cl.nodes[2].Name()})
	drive("during-1")
	drive("during-2")
	if cl.nodes[2].Chain().Head().Number >= cl.nodes[0].Chain().Head().Number {
		t.Fatal("isolation had no effect")
	}
	cl.net.Heal()
	// The next proposal's gossip triggers the catch-up.
	drive("after")
	if got, want := cl.nodes[2].Chain().HeadHash(), cl.nodes[0].Chain().HeadHash(); got != want {
		t.Errorf("lagging node did not catch up: %s vs %s", got, want)
	}
	if cl.nodes[2].Forked() {
		t.Error("recovered node reports forked")
	}
}

func TestPartitionHealStatusQuoAdoption(t *testing.T) {
	// A node isolated across a full merge cycle falls behind the quorum's
	// Genesis marker; its continuation blocks were physically deleted, so
	// it must adopt the majority's live chain (§IV-C / §V-B.4).
	cl := newCluster(t, 3, "alpha")
	alpha := cl.keys["alpha"]
	drive := func(payload string) {
		cl.nodes[0].SubmitLocal(block.NewData("alpha", []byte(payload)).Sign(alpha))
		cl.net.Flush()
		cl.propose(t)
	}
	drive("genesis-era")
	cl.net.Partition([]string{cl.nodes[2].Name()})
	// Drive the majority through at least one marker shift.
	for i := 0; i < 8; i++ {
		drive(fmt.Sprintf("during-%d", i))
	}
	if cl.nodes[0].Chain().Marker() == 0 {
		t.Fatal("majority never shifted the marker; test is vacuous")
	}
	if cl.nodes[2].Chain().Head().Number > cl.nodes[0].Chain().Marker() {
		t.Fatalf("isolated node head %d not behind majority marker %d",
			cl.nodes[2].Chain().Head().Number, cl.nodes[0].Chain().Marker())
	}
	cl.net.Heal()
	drive("after-heal")
	// One more round so the adopted node also receives post-adoption blocks.
	drive("after-heal-2")
	if got, want := cl.nodes[2].Chain().HeadHash(), cl.nodes[0].Chain().HeadHash(); got != want {
		t.Errorf("node did not adopt the status quo: head %s vs %s", got, want)
	}
	if cl.nodes[2].Chain().Marker() != cl.nodes[0].Chain().Marker() {
		t.Errorf("markers differ after adoption: %d vs %d",
			cl.nodes[2].Chain().Marker(), cl.nodes[0].Chain().Marker())
	}
	if err := cl.nodes[2].Chain().VerifyIntegrity(); err != nil {
		t.Errorf("adopted chain invalid: %v", err)
	}
}

func TestSyncIgnoresNonQuorumSenders(t *testing.T) {
	// Catch-up data is only accepted from authenticated quorum members;
	// a registered user cannot feed a node a replacement chain — not
	// incrementally, and not via a snapshot-adoption offer.
	cl := newCluster(t, 2, "alpha")
	userKey := cl.keys["alpha"]
	ep, err := cl.net.Join("outsider", func(netsim.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	genesis := cl.nodes[0].Chain().Blocks()[0].Encode()
	headBefore := cl.nodes[1].Chain().HeadHash()
	fakeSync := wire.SyncRespPayload{Blocks: [][]byte{genesis}}
	if err := ep.Send(cl.nodes[1].Name(), wire.KindSyncResp,
		wire.SealEnvelope(userKey, wire.KindSyncResp, wire.EncodeSyncResp(fakeSync))); err != nil {
		t.Fatal(err)
	}
	fakeSnap := wire.SnapshotPayload{Marker: 0, Head: 0, Blocks: [][]byte{genesis}}
	if err := ep.Send(cl.nodes[1].Name(), wire.KindSnapshotResp,
		wire.SealEnvelope(userKey, wire.KindSnapshotResp, wire.EncodeSnapshot(fakeSnap))); err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	if cl.nodes[1].Chain().HeadHash() != headBefore {
		t.Error("non-quorum sync response mutated the chain")
	}
}

func TestProofOfAuthorityCluster(t *testing.T) {
	// Rotating proposers under the PoA engine: each anchor seals only its
	// own slots; everyone converges including across merges (E12 in a
	// distributed setting).
	const anchors = 3
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	registry := identity.NewRegistry()
	names := make([]string, anchors)
	for i := range names {
		names[i] = fmt.Sprintf("auth-%d", i)
	}
	quorum, err := consensus.NewQuorum(names)
	if err != nil {
		t.Fatal(err)
	}
	alpha := identity.Deterministic("alpha", "cluster-test")
	if err := registry.RegisterKey(alpha, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, anchors)
	for i, name := range names {
		kp := identity.Deterministic(name, "cluster-test")
		if err := registry.RegisterKey(kp, identity.RoleMaster); err != nil {
			t.Fatal(err)
		}
		engine, err := consensus.NewAuthority(names, name)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], err = New(Config{
			Key: kp,
			Chain: chain.Config{
				SequenceLength: 3,
				MaxSequences:   2,
				Registry:       registry,
				Clock:          simclock.NewLogical(0),
			},
			Engine:  engine,
			Quorum:  quorum,
			Network: net,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 9; round++ {
		// The slot leader for the next block proposes.
		next := nodes[0].Chain().NextNumber()
		leader := nodes[int(next%uint64(anchors))]
		leader.SubmitLocal(block.NewData("alpha", []byte(fmt.Sprintf("r%d", round))).Sign(alpha))
		net.Flush()
		if _, err := leader.Propose(); err != nil {
			t.Fatalf("round %d leader %s: %v", round, leader.Name(), err)
		}
		net.Flush()
	}
	h := nodes[0].Chain().HeadHash()
	for _, n := range nodes[1:] {
		if n.Chain().HeadHash() != h {
			t.Errorf("%s diverged under PoA", n.Name())
		}
	}
	if nodes[0].Chain().Marker() == 0 {
		t.Error("no merge cycle crossed")
	}
	// A non-leader cannot seal its slot.
	next := nodes[0].Chain().NextNumber()
	wrong := nodes[int((next+1)%uint64(anchors))]
	if _, err := wrong.Propose(); !errors.Is(err, consensus.ErrNotLeader) {
		t.Errorf("non-leader propose: %v, want ErrNotLeader", err)
	}
}

func TestLossyNetworkRecoversViaSync(t *testing.T) {
	// Gossip loss is repaired by the catch-up protocol: blocks dropped on
	// the way to a follower are fetched via sync_req at the next gossip
	// that reveals the gap.
	cl := newCluster(t, 3, "alpha")
	alpha := cl.keys["alpha"]
	// proposeRetry drives one proposal, retrying while the summary vote
	// is pending (votes may be lost; the repair protocol re-announces).
	proposeRetry := func(i int) {
		t.Helper()
		cl.nodes[0].SubmitLocal(block.NewData("alpha", []byte(fmt.Sprintf("p%d", i))).Sign(alpha))
		cl.net.Flush()
		for attempt := 0; ; attempt++ {
			_, err := cl.nodes[0].Propose()
			cl.net.Flush()
			if err == nil {
				return
			}
			if !errors.Is(err, ErrSummaryPending) {
				t.Fatal(err)
			}
			if attempt > 200 {
				t.Fatal("summary vote never completed")
			}
		}
	}
	cl.net.SetDropRate(0.25)
	for i := 0; i < 20; i++ {
		proposeRetry(i)
	}
	// Stop losing messages and drive a few clean rounds so stragglers
	// catch up via sync.
	cl.net.SetDropRate(0)
	for i := 20; i < 24; i++ {
		proposeRetry(i)
	}
	h := cl.nodes[0].Chain().HeadHash()
	for _, n := range cl.nodes[1:] {
		if n.Chain().HeadHash() != h {
			t.Errorf("%s did not recover from message loss (head %d vs %d)",
				n.Name(), n.Chain().Head().Number, cl.nodes[0].Chain().Head().Number)
		}
		if err := n.Chain().VerifyIntegrity(); err != nil {
			t.Errorf("%s integrity: %v", n.Name(), err)
		}
	}
}
