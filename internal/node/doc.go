// Package node implements anchor nodes: the quorum members that "manage
// the full copy of the blockchain" (§IV-A), extend their consensus
// engine with the summary-block behaviour (§IV-B), vote on
// Genesis-marker shifts (§IV-C), and serve the current status quo to
// clients so isolated participants can recover (§V-B.4).
//
// A node owns a fully configured selective-deletion chain — the
// parallel verification pool, the asynchronous deletion lifecycle, and
// (optionally) a persistent store it restores from at startup, snapshot
// checkpoint first, so a restarted node replays only the live suffix.
//
// Writes flow through the same batching pipeline as a single-process
// chain: Submit coalesces concurrent local producers through a
// mempool.Batcher whose sealer proposes blocks — build, engine-seal,
// append, gossip, then kick the summary vote when the next slot is a
// summary slot. Gossiped entries from peers and clients land in a
// deduplicating pending pool after a signature screen that also
// batch-prechecks deletion co-signatures through the verification pool,
// so proposal-time authorization resolves from the verified-signature
// cache. Propose drains that pool through the same pipeline — there is
// exactly one sealing path.
//
// Peer synchronization is snapshot-anchored: a node that fell behind
// within the live window receives the missing suffix (wire.SyncResp),
// while one that fell behind the quorum's Genesis marker receives the
// snapshot payload (wire.SnapshotResp) — marker, head, and the live
// blocks — and adopts it by streaming the blocks through the chain's
// restore pipeline (chain.RestoreStream), never replaying anything the
// quorum already deleted.
//
// Fault injection for the scenario suite comes from internal/attack
// (Config.Byzantine): a vote-withholding member computes summaries but
// stays silent in the quorum vote, probing the liveness bound of the
// majority rule.
package node
