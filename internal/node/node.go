package node

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/seldel/seldel/internal/attack"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/deletion"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/store"
	"github.com/seldel/seldel/internal/wire"
)

// Config assembles an anchor node.
type Config struct {
	// Key is the node's network identity; it must be registered in the
	// chain registry (the quorum's "master signature" role, §IV-D.1).
	Key *identity.KeyPair
	// Chain is the chain configuration. Every quorum member must use
	// identical parameters, or summaries diverge.
	Chain chain.Config
	// Engine seals and verifies normal blocks.
	Engine consensus.Engine
	// Quorum is the anchor-node set voting on marker shifts.
	Quorum *consensus.Quorum
	// Network connects the node to its peers.
	Network *netsim.Network
	// Store, when set, persists the node's chain. A populated store is
	// restored from at startup — starting at its snapshot checkpoint,
	// so only the live suffix is replayed — and an empty one is
	// mirrored from genesis. The store stays the caller's to close
	// (after Node.Close), like seldel.WithStore.
	Store store.Store
	// Byzantine fault-injects the node for the scenario suite; the
	// zero value is an honest node. See internal/attack.Behavior.
	Byzantine attack.Behavior
	// FillerInterval rate-limits the empty-pool filler block Propose
	// seals to keep retention ticking (§IV-D.3): with a non-zero
	// interval, an empty-pool Propose within the interval of the last
	// filler returns ErrFillerThrottled instead of minting another
	// empty block. Zero keeps the historical behaviour — every
	// empty-pool Propose seals a filler — which deterministic drivers
	// rely on.
	FillerInterval time.Duration
	// VoteRetryInterval makes the node self-driving on lossy networks:
	// while a due summary vote stays incomplete, the node re-announces
	// its vote every interval (each re-announcement triggers the peers'
	// repair answers) instead of waiting for the next caller-driven
	// Propose. Zero disables the timer — deterministic drivers own time.
	VoteRetryInterval time.Duration
	// Logf, when set, receives the node's rare operator-facing log lines
	// (today: entering sync-offer suppression against a misbehaving
	// peer). Nil discards them.
	Logf func(format string, args ...any)
}

// ErrSummaryPending is returned while the quorum vote for the due
// summary block is still incomplete (e.g. votes were lost on a lossy
// network, or the node sits in a minority partition); the node
// re-announces its vote and the caller retries once the network
// settles.
var ErrSummaryPending = errors.New("node: summary vote pending")

// ErrFillerThrottled is returned by Propose when the pool is empty and
// the configured Config.FillerInterval since the last filler block has
// not yet elapsed: the chain does not need another empty block before
// the next retention tick.
var ErrFillerThrottled = errors.New("node: filler block throttled")

// ErrClosed is returned by writes after Close. It wraps the pipeline's
// closed sentinel, so applications classify both with one errors.Is
// against the root façade's ErrClosed.
var ErrClosed = fmt.Errorf("node: %w", mempool.ErrClosed)

// summaryWait bounds how long a pipeline seal blocks waiting for a due
// summary vote to complete before reporting ErrSummaryPending. On an
// in-process network the vote settles in microseconds; the budget only
// matters under partitions and message loss, where failing fast (and
// letting the caller retry after re-announce) beats stalling the
// flusher.
const summaryWait = 25 * time.Millisecond

// voteState tracks the quorum votes for one pending summary block.
type voteState struct {
	counts    map[codec.Hash]int
	voted     map[string]codec.Hash // sender → hash it voted for
	localHash codec.Hash
	localSet  bool
	applied   bool
	// evidence keeps the raw signed vote envelopes seen per sender for
	// this round, keyed by claimed hash. Two entries for one sender are
	// proof of equivocation: both are relayable and independently
	// verifiable by any peer.
	evidence map[string]map[codec.Hash][]byte
	// relayed tracks which disagreeing (sender, hash) votes we already
	// forwarded as evidence, so relay-on-disagreement sends each at most
	// once.
	relayed map[string]map[codec.Hash]bool
}

// offerRejectLimit is how many consecutive resurrection-rejected catch-up
// offers a peer may send before the node stops reading its offers
// entirely (satellite defense against forged-snapshot spam). The counter
// resets when the node itself asks that peer for data again.
const offerRejectLimit = 3

// SyncStats counts the node's catch-up traffic: snapshot offers by
// outcome, chunk flow in both directions, and the high-water mark of
// blocks staged in the receive path (which the chunked protocol keeps
// bounded regardless of chain length).
type SyncStats struct {
	// OffersStarted..OffersIgnored count received snapshot offers:
	// accepted-and-streaming, adopted, failed mid-stream, rejected by the
	// resurrection floor, dropped before decode because the sender is in
	// rejection backoff, and dropped because another offer was already
	// streaming.
	OffersStarted    uint64
	OffersCompleted  uint64
	OffersAborted    uint64
	OffersRejected   uint64
	OffersSuppressed uint64
	OffersIgnored    uint64
	// ChunksSent and ChunksReceived count snapshot chunks on the wire.
	ChunksSent     uint64
	ChunksReceived uint64
	// PeakStagedBlocks is the most blocks that ever sat decoded in the
	// receive path awaiting restore-pipeline registration.
	PeakStagedBlocks int64
}

// Node is one anchor node.
type Node struct {
	mu       sync.Mutex
	name     string
	key      *identity.KeyPair
	chain    *chain.Chain // guarded by mu for the rare status-quo adoption swap
	chainCfg chain.Config // engine-wired config, reused by adoptSnapshot
	engine   consensus.Engine
	quorum   *consensus.Quorum
	ep       *netsim.Endpoint
	store    store.Store
	pool     *mempool.Pool    // deduplicating pending set fed by gossip
	prop     *mempool.Batcher // proposal pipeline; its sealer is proposer
	// sealMu serializes block proposals: the pipeline flusher and the
	// empty-slot filler path both seal through it, so they never race
	// each other for the head slot.
	sealMu    sync.Mutex
	tallies   map[uint64]*voteState
	forked    bool
	byzantine attack.Behavior
	closed    bool
	storeErr  error // persistence failure during snapshot adoption
	// fillerEvery/lastFiller implement the Config.FillerInterval rate
	// limit on empty-pool filler blocks; lastFiller is guarded by mu.
	fillerEvery time.Duration
	lastFiller  time.Time

	logf func(format string, args ...any)

	// equivocators holds quorum members this node has proof (two
	// conflicting signed votes for one round) deviated from the
	// single-proposal rule. Their votes and catch-up offers are ignored
	// and any already-counted votes were retracted. Guarded by mu.
	equivocators map[string]bool

	// voteRetry/retryTimer implement Config.VoteRetryInterval; the timer
	// is armed while a summary vote is pending and guarded by mu.
	voteRetry  time.Duration
	retryTimer *time.Timer

	// quit is closed by Close; the snapshot-session restore consumer
	// selects on it so an offer in flight at shutdown unwinds instead of
	// leaking its goroutine.
	quit chan struct{}

	// Snapshot catch-up state. sess is the single active inbound offer
	// session; it is owned by the endpoint's delivery goroutine (all
	// chunks arrive there), so it needs no lock. offerRejects /
	// offerSuppressed track consecutive resurrection-rejected offers per
	// peer (guarded by mu). snapOfferSeq numbers outgoing offers.
	sess           *snapSession
	offerRejects   map[string]int
	suppressedLog  map[string]bool
	snapOfferSeq   uint64 // guarded by mu
	frozenOffer    []wire.SnapshotPayload
	frozenOfferSet bool // guarded by mu with frozenOffer

	// staged/stagedPeak gauge blocks decoded in the receive path but not
	// yet consumed by the restore pipeline (atomics; see SyncStats).
	staged     atomic.Int64
	stagedPeak atomic.Int64
	// stats counters below are guarded by mu.
	stats SyncStats
}

// snapSession is one inbound snapshot offer being streamed into the
// restore pipeline. The delivery goroutine feeds decoded blocks through
// feed; a dedicated consumer goroutine runs chain.RestoreStream and
// deposits the outcome in res (buffered, so it can always exit).
type snapSession struct {
	sender  string
	offerID uint64
	last    wire.SnapshotPayload // last accepted chunk's header (no blocks)
	feed    chan snapFeedItem
	res     chan snapResult
	// dead is closed when the consumer goroutine stops reading (restore
	// finished or failed); feed pushes select on it so an abort can never
	// wedge the delivery goroutine against a full channel.
	dead chan struct{}
}

type snapFeedItem struct {
	b   *block.Block
	err error
}

type snapResult struct {
	c   *chain.Chain
	err error
}

// New creates an anchor node and joins it to the network. With a
// populated Config.Store the chain is restored from the store's
// snapshot checkpoint (the restart path); otherwise a fresh genesis is
// created.
func New(cfg Config) (*Node, error) {
	if cfg.Key == nil {
		return nil, errors.New("node: missing key")
	}
	if !cfg.Byzantine.Valid() {
		return nil, fmt.Errorf("node: unknown byzantine behaviour %d", cfg.Byzantine)
	}
	if cfg.Engine == nil {
		cfg.Engine = consensus.NoOp{}
	}
	if cfg.Quorum == nil {
		q, err := consensus.NewQuorum([]string{cfg.Key.Name()})
		if err != nil {
			return nil, err
		}
		cfg.Quorum = q
	}
	chainCfg := cfg.Chain
	consensus.Configure(&chainCfg, cfg.Engine)
	c, err := openChain(chainCfg, cfg.Store)
	if err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	n := &Node{
		name:          cfg.Key.Name(),
		key:           cfg.Key,
		chain:         c,
		chainCfg:      chainCfg,
		engine:        cfg.Engine,
		quorum:        cfg.Quorum,
		store:         cfg.Store,
		pool:          mempool.NewPool(),
		tallies:       make(map[uint64]*voteState),
		byzantine:     cfg.Byzantine,
		fillerEvery:   cfg.FillerInterval,
		voteRetry:     cfg.VoteRetryInterval,
		logf:          logf,
		equivocators:  make(map[string]bool),
		offerRejects:  make(map[string]int),
		suppressedLog: make(map[string]bool),
		quit:          make(chan struct{}),
	}
	n.prop = mempool.NewBatcher(proposer{n}, mempool.Options{Warm: n.warmEntries})
	if cfg.Network != nil {
		ep, err := cfg.Network.Join(n.name, n.handle)
		if err != nil {
			n.prop.Close()
			c.Close()
			return nil, err
		}
		n.ep = ep
	}
	return n, nil
}

// openChain builds the node's chain: restored from a populated store
// (which streams from its snapshot checkpoint), mirrored into an empty
// one, stand-alone without one.
func openChain(cfg chain.Config, s store.Store) (*chain.Chain, error) {
	if s == nil {
		return chain.New(cfg)
	}
	_, _, populated, err := s.Range()
	if err != nil {
		return nil, fmt.Errorf("node: probing store: %w", err)
	}
	if populated {
		c, _, err := store.OpenChain(cfg, s)
		return c, err
	}
	c, err := chain.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := store.Attach(c, s); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close detaches the node from the network, drains its proposal
// pipeline, and closes the chain. The store (if any) stays open for
// the caller — a restarted node reopens it via Config.Store.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	if n.retryTimer != nil {
		n.retryTimer.Stop()
		n.retryTimer = nil
	}
	n.mu.Unlock()
	close(n.quit)
	// Drain the proposal pipeline while still on the network: queued
	// submissions may land on a due summary slot, and completing that
	// vote needs the peers' answers to still reach us. Only then leave.
	err := n.prop.Close()
	if n.ep != nil {
		n.ep.Leave()
	}
	// Leave stops new deliveries but the endpoint's goroutine may still
	// be draining queued messages — including a snapshot adoption that
	// swaps n.chain. sealMu serializes with that adoption (which checks
	// closed and aborts once we hold it), so exactly one chain survives
	// to be closed here and none leaks.
	n.sealMu.Lock()
	cerr := n.Chain().Close()
	n.sealMu.Unlock()
	if err == nil {
		err = cerr
	}
	return err
}

// Name returns the node's identity name.
func (n *Node) Name() string { return n.name }

// Chain exposes the node's chain (read-mostly; concurrent-safe). The
// pointer may change when the node adopts a new status quo after falling
// behind the quorum's Genesis marker.
func (n *Node) Chain() *chain.Chain {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.chain
}

// Stats snapshots the current chain's size and deletion counters — the
// read surface a serving front-end exposes without reaching through
// Chain() (which may be swapped by a status-quo adoption mid-call).
func (n *Node) Stats() chain.Stats { return n.Chain().Stats() }

// EntriesSeq streams the current chain's live entries with their stable
// references. The snapshot is taken when iteration starts; a concurrent
// status-quo adoption affects later calls, not a stream in progress.
func (n *Node) EntriesSeq() iter.Seq2[block.Ref, *block.Entry] {
	return n.Chain().EntriesSeq()
}

// Tombstones returns the current chain's deletion audit records, oldest
// first, waiting out pending compactions like chain.Chain.Tombstones.
func (n *Node) Tombstones(ctx context.Context) ([]manifest.Record, error) {
	return n.Chain().Tombstones(ctx)
}

// ProveDeleted builds the deletion proof for ref against the current
// chain's tombstone layer.
func (n *Node) ProveDeleted(ref block.Ref) (*chain.DeletedProof, error) {
	return n.Chain().ProveDeleted(ref)
}

// Forked reports whether the node detected divergence from the quorum.
func (n *Node) Forked() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.forked
}

// Equivocators returns the quorum members this node holds equivocation
// proof against (two conflicting signed votes for one round), sorted.
func (n *Node) Equivocators() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.equivocators))
	for name := range n.equivocators {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SyncStats snapshots the node's catch-up counters.
func (n *Node) SyncStats() SyncStats {
	n.mu.Lock()
	s := n.stats
	n.mu.Unlock()
	s.PeakStagedBlocks = n.stagedPeak.Load()
	return s
}

// MempoolSize returns the number of pending gossip entries.
func (n *Node) MempoolSize() int {
	return n.pool.Len()
}

// handle dispatches incoming network messages. It runs on the endpoint's
// delivery goroutine.
func (n *Node) handle(msg netsim.Message) {
	env, err := wire.OpenEnvelope(n.Chain().Registry(), msg.Payload)
	if err != nil {
		return // unauthenticated message: drop
	}
	switch env.Kind {
	case wire.KindEntry:
		n.handleEntry(env)
	case wire.KindBlock:
		n.handleBlock(env)
	case wire.KindVote:
		n.handleVote(env)
	case wire.KindVoteEvidence:
		n.handleVoteEvidence(env)
	case wire.KindStatusReq:
		n.handleStatusReq(env)
	case wire.KindLookupReq:
		n.handleLookupReq(env)
	case wire.KindSyncReq:
		n.handleSyncReq(env)
	case wire.KindSyncResp:
		n.handleSyncResp(env)
	case wire.KindSnapshotResp:
		n.handleSnapshotResp(env)
	}
}

func (n *Node) handleEntry(env wire.Envelope) {
	e, err := block.DecodeEntry(env.Body)
	if err != nil {
		return
	}
	n.AddToMempool(e)
}

// screenEntry is the gossip intake filter: entry signatures verify
// through the chain's verification pool, and deletion requests
// batch-precheck their co-signatures the same way — both warm the
// verified-signature cache, so the later proposal-time validation of
// the same entry resolves from cache. A deletion request carrying a
// cryptographically invalid co-signature is dropped here (it could
// never create a mark); stateful cohesion failures still go on-chain
// and are rejected as marks ("wrong requests … have no further
// effects", §V).
func (n *Node) screenEntry(e *block.Entry) bool {
	c := n.Chain()
	if err := c.Verifier().Entries(c.Registry(), []*block.Entry{e}); err != nil {
		return false
	}
	if e.Kind == block.KindDeletion {
		if pre := deletion.PrecheckRequest(c.Verifier(), c.Registry(), e); pre.BadSigner != "" {
			return false
		}
	}
	return true
}

// AddToMempool queues an entry for inclusion in the next proposed
// block. Duplicates (by content hash) are ignored by the pending pool;
// the signature screen runs through the chain's verification pool.
func (n *Node) AddToMempool(e *block.Entry) {
	if !n.screenEntry(e) {
		return
	}
	n.pool.Add(e)
}

// warmEntries pre-verifies a submitted group while its batch is still
// assembling: entry signatures and deletion co-signatures populate the
// verified-signature cache, so the sealing flush re-checks them for
// cache hits instead of Ed25519 cost.
func (n *Node) warmEntries(entries []*block.Entry) {
	c := n.Chain()
	c.Verifier().Warm(c.Registry(), entries)
	for _, e := range entries {
		if e.Kind == block.KindDeletion {
			deletion.PrecheckRequest(c.Verifier(), c.Registry(), e)
		}
	}
}

// proposer adapts the node's proposal path to the batching pipeline's
// Ledger interface: sealed batches become proposed blocks.
type proposer struct{ n *Node }

// Seal implements mempool.Ledger.
func (p proposer) Seal(entries []*block.Entry) ([]*block.Block, []mempool.MarkOutcome, error) {
	return p.n.sealProposal(entries)
}

// ValidateEntries implements mempool.Ledger.
func (p proposer) ValidateEntries(entries []*block.Entry) error {
	return p.n.Chain().ValidateEntries(entries)
}

// sealProposal is the node's single sealing path: build a normal block
// from the batch, seal it with the consensus engine, append it, gossip
// it, and kick the summary vote when the next slot is a summary slot.
// When that next slot is ALREADY a summary slot, the proposal must wait
// for the quorum vote to land the summary first; if the vote does not
// complete within the budget (lost votes, minority partition), the
// batch fails with ErrSummaryPending and the pipeline's retry/receipt
// machinery reports it to the callers.
func (n *Node) sealProposal(entries []*block.Entry) ([]*block.Block, []mempool.MarkOutcome, error) {
	n.sealMu.Lock()
	defer n.sealMu.Unlock()
	c := n.Chain()
	if c.NextIsSummary() {
		if !n.waitSummaryApplied(c) {
			return nil, nil, ErrSummaryPending
		}
		c = n.Chain()
	}
	b, err := c.BuildNormal(entries)
	if err != nil {
		return nil, nil, err
	}
	if err := n.engine.Seal(b); err != nil {
		return nil, nil, fmt.Errorf("node: seal: %w", err)
	}
	outcomes, err := c.AppendBlockOutcomes(b)
	if err != nil {
		return nil, nil, err
	}
	if n.ep != nil {
		n.ep.Broadcast(wire.KindBlock, wire.SealEnvelope(n.key, wire.KindBlock, b.Encode()))
	}
	n.afterAppend()
	return []*block.Block{b}, outcomes, nil
}

// waitSummaryApplied announces our vote for the due summary block and
// polls briefly for the quorum decision to apply it. It reports whether
// the summary landed (votes are applied by the network delivery
// goroutines, so polling — not re-entering the tally — is correct
// here).
func (n *Node) waitSummaryApplied(c *chain.Chain) bool {
	n.announceSummary(c)
	deadline := time.Now().Add(summaryWait)
	for c.NextIsSummary() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
	return true
}

// Submit enqueues entries into the node's proposal pipeline and returns
// one Receipt per entry: the concurrent local write path. Entries from
// many goroutines coalesce into proposed blocks exactly like a
// single-process chain's Submit; each receipt resolves to the entry's
// stable Ref (and deletion-mark outcome) once its block is sealed and
// gossiped. Entries reach the peers inside the sealed block — a
// receipt therefore implies the entry is on the node's chain and on the
// wire to every reachable peer.
func (n *Node) Submit(ctx context.Context, entries ...*block.Entry) ([]mempool.Receipt, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	return n.prop.Submit(ctx, entries...)
}

// SubmitWait submits entries and blocks until every receipt resolves,
// failing fast on the first per-entry error.
func (n *Node) SubmitWait(ctx context.Context, entries ...*block.Entry) ([]mempool.Sealed, error) {
	receipts, err := n.Submit(ctx, entries...)
	if err != nil {
		return nil, err
	}
	out := make([]mempool.Sealed, len(receipts))
	for i, r := range receipts {
		s, err := r.Wait(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// PipelineStats returns the node's proposal-pipeline counters (sealed
// batches, receipts, backpressure) merged with the chain's
// verification, compaction, and index gauges.
func (n *Node) PipelineStats() mempool.Stats {
	s := n.prop.Stats()
	cs := n.Chain().PipelineStats()
	s.Verify = cs.Verify
	s.Compaction = cs.Compaction
	s.Index = cs.Index
	return s
}

// SubmitLocal queues an entry as if received from a client and gossips
// it to the peer anchors — the replicated-mempool flow driven by an
// explicit Propose (deterministic simulations, the demo CLI). For the
// pipelined flow, use Submit.
func (n *Node) SubmitLocal(e *block.Entry) {
	n.AddToMempool(e)
	if n.ep != nil {
		n.ep.Broadcast(wire.KindEntry, wire.SealEnvelope(n.key, wire.KindEntry, e.Encode()))
	}
}

// Propose drains the pending gossip pool through the proposal pipeline:
// one block holding every pending entry that still validates (invalid
// ones are rejected per-entry by the pipeline, mirroring "wrong
// requests … have no further effects"). With an empty pool it proposes
// a filler block (§IV-D.3). While the summary vote for a due summary
// slot is incomplete it re-announces our vote and returns
// ErrSummaryPending; the caller retries once the network settles.
func (n *Node) Propose() (*block.Block, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	c := n.Chain()
	if c.NextIsSummary() {
		// Re-announce ours; peers answer with theirs, repairing lost
		// votes. Retried by the caller rather than blocking here, so
		// deterministic drivers stay in control of time.
		n.announceSummary(c)
		if c.NextIsSummary() {
			return nil, ErrSummaryPending
		}
	}
	entries := n.pool.Take()
	ctx := context.Background()
	receipts, err := n.prop.Submit(ctx, entries...)
	if err != nil {
		n.pool.Requeue(entries)
		return nil, err
	}
	var sealed *block.Block
	var pending []*block.Entry // failed only on the stuck vote, still valid
	var firstErr error
	for i, r := range receipts {
		s, err := r.Wait(ctx)
		if err != nil {
			if errors.Is(err, ErrSummaryPending) {
				pending = append(pending, entries[i])
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if sealed == nil {
			if b, ok := n.Chain().Block(s.Block); ok {
				sealed = b
			}
		}
	}
	// Entries that failed only because the summary vote is incomplete
	// were never sealed and still validate: they survive for the retry,
	// whatever errors OTHER entries of the batch resolved with.
	n.pool.Requeue(pending)
	if sealed != nil {
		return sealed, nil
	}
	if len(pending) > 0 {
		return nil, ErrSummaryPending
	}
	// Empty pool, or every entry was rejected: the slot still gets its
	// (possibly empty) block, like a retention tick. A truly empty pool
	// is rate-limited to the configured filler interval, so idle nodes
	// do not mint chains of empty blocks between retention ticks.
	if len(entries) == 0 && !n.fillerDue() {
		return nil, ErrFillerThrottled
	}
	blocks, _, err := n.sealProposal(nil)
	if err != nil {
		return nil, err
	}
	return blocks[0], nil
}

// fillerDue reports whether an empty-pool filler block may be sealed
// now, stamping the throttle window when it is. With no configured
// interval every filler is due, preserving deterministic drivers that
// call Propose on their own clock.
func (n *Node) fillerDue() bool {
	if n.fillerEvery <= 0 {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	if !n.lastFiller.IsZero() && now.Sub(n.lastFiller) < n.fillerEvery {
		return false
	}
	n.lastFiller = now
	return true
}

func (n *Node) handleBlock(env wire.Envelope) {
	b, err := block.DecodeBlock(env.Body)
	if err != nil {
		return
	}
	c := n.Chain()
	if err := c.AppendBlock(b); err != nil {
		// A gap means we fell behind (e.g. a healed partition): ask the
		// sender for the missing suffix (§V-B.4 recovery via anchors).
		if errors.Is(err, chain.ErrNotNext) && b.Header.Number > c.Head().Number+1 {
			n.requestSync(env.Sender)
		}
		// Otherwise: stale or conflicting block. A summary mismatch means
		// WE may be the forked party only if the majority agrees with the
		// sender; that is decided by the vote, not here.
		return
	}
	n.removeFromMempool(b.Entries)
	n.afterAppend()
}

// requestSync asks peer for everything after our head. Asking is a
// deliberate act, so it lifts any offer-rejection backoff against that
// peer: the answer we just solicited will be read.
func (n *Node) requestSync(peer string) {
	if n.ep == nil {
		return
	}
	n.mu.Lock()
	delete(n.offerRejects, peer)
	delete(n.suppressedLog, peer)
	n.mu.Unlock()
	body := wire.EncodeSyncReq(wire.SyncReqPayload{HeadNumber: n.Chain().Head().Number})
	_ = n.ep.Send(peer, wire.KindSyncReq, wire.SealEnvelope(n.key, wire.KindSyncReq, body))
}

// offerGate applies the per-peer offer backoff: once a peer has had
// offerRejectLimit consecutive offers rejected by the resurrection
// floor, further unsolicited offers are dropped before decoding (logged
// once per suppression episode). Returns false when the offer must be
// ignored.
func (n *Node) offerGate(peer string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.equivocators[peer] {
		n.stats.OffersSuppressed++
		return false
	}
	if n.offerRejects[peer] < offerRejectLimit {
		return true
	}
	n.stats.OffersSuppressed++
	if !n.suppressedLog[peer] {
		n.suppressedLog[peer] = true
		n.logf("node %s: suppressing catch-up offers from %s after %d resurrection-rejected offers", n.name, peer, n.offerRejects[peer])
	}
	return false
}

// noteOfferRejected records a resurrection-floor rejection of an offer
// from peer; noteOfferAccepted clears the strike counter.
func (n *Node) noteOfferRejected(peer string) {
	n.mu.Lock()
	n.offerRejects[peer]++
	n.stats.OffersRejected++
	n.mu.Unlock()
}

func (n *Node) noteOfferAccepted(peer string) {
	n.mu.Lock()
	delete(n.offerRejects, peer)
	delete(n.suppressedLog, peer)
	n.mu.Unlock()
}

// handleSyncReq serves catch-up data. A requester still inside our live
// window gets the incremental suffix it can append directly; one whose
// continuation point was already truncated away gets the
// snapshot-anchored status quo instead — marker, head, and the live
// blocks — which it adopts wholesale (the marker block "is a trusted
// anchor … already approved by the anchor nodes", §IV-C).
func (n *Node) handleSyncReq(env wire.Envelope) {
	if n.ep == nil {
		return
	}
	req, err := wire.DecodeSyncReq(env.Body)
	if err != nil {
		return
	}
	c := n.Chain()
	from := req.HeadNumber + 1
	if from < c.Marker() {
		n.sendSnapshot(env.Sender, c)
		return
	}
	resp := wire.SyncRespPayload{}
	if head, ok := c.TombstoneHead(); ok {
		resp.ManifestSeq = head.Seq
		resp.ManifestMarker = head.NewMarker
	}
	for b := range c.BlocksSeq() {
		if b.Header.Number < from {
			continue
		}
		// Incremental catch-up may be partial: the requester appends
		// what fits under the wire bound, and the gap its next gossip
		// reveals triggers another sync round for the rest.
		if len(resp.Blocks) == wire.MaxSyncBlocks {
			break
		}
		resp.Blocks = append(resp.Blocks, b.Encode())
	}
	if len(resp.Blocks) == 0 {
		return
	}
	_ = n.ep.Send(env.Sender, wire.KindSyncResp,
		wire.SealEnvelope(n.key, wire.KindSyncResp, wire.EncodeSyncResp(resp)))
}

// snapChunkBlocks is the sender-side chunk size. It defaults to the wire
// maximum; tests shrink it (same package) to exercise multi-chunk offers
// without sealing hundreds of blocks first. Receivers accept any chunk
// up to the wire bound, so the two sides need not agree.
var snapChunkBlocks = wire.MaxSnapshotChunkBlocks

// sendSnapshot streams our snapshot-anchored live chain to peer as a
// sequence of bounded chunks sharing one offer ID. The offer's marker
// and head are taken from the streamed blocks themselves, so the stream
// is internally consistent even if a truncation lands concurrently. At
// no point does the whole live window sit encoded in memory — the send
// buffer holds at most one chunk.
//
// A ForgedSnapshot node serves the first offer it ever built, forever:
// the replayed chunks are re-signed fresh (the forger IS a quorum
// member; its signatures are genuine) but anchor at a marker the quorum
// has long moved past — the receiver's resurrection floor is what must
// catch that.
func (n *Node) sendSnapshot(peer string, c *chain.Chain) {
	n.mu.Lock()
	n.snapOfferSeq++
	offerID := n.snapOfferSeq
	frozen := n.frozenOfferSet
	replay := append([]wire.SnapshotPayload(nil), n.frozenOffer...)
	n.mu.Unlock()

	if n.byzantine.ReplaysStaleSnapshot() && frozen {
		for _, p := range replay {
			p.OfferID = offerID
			n.sendSnapshotChunk(peer, p)
		}
		return
	}

	var sent []wire.SnapshotPayload
	base := wire.SnapshotPayload{OfferID: offerID}
	if head, ok := c.TombstoneHead(); ok {
		base.ManifestSeq = head.Seq
		base.ManifestMarker = head.NewMarker
	}
	chunk := base
	idx := uint32(0)
	flush := func(last bool) {
		chunk.Chunk = idx
		chunk.Last = last
		n.sendSnapshotChunk(peer, chunk)
		sent = append(sent, chunk)
		idx++
		next := base
		next.Marker = chunk.Head + 1
		chunk = next
	}
	for b := range c.BlocksSeq() {
		if len(chunk.Blocks) >= snapChunkBlocks {
			flush(false)
		}
		if len(chunk.Blocks) == 0 {
			chunk.Marker = b.Header.Number
		}
		chunk.Head = b.Header.Number
		chunk.Blocks = append(chunk.Blocks, b.Encode())
	}
	if len(chunk.Blocks) == 0 {
		return
	}
	flush(true)

	if n.byzantine.ReplaysStaleSnapshot() {
		n.mu.Lock()
		if !n.frozenOfferSet {
			n.frozenOffer = sent
			n.frozenOfferSet = true
		}
		n.mu.Unlock()
	}
}

func (n *Node) sendSnapshotChunk(peer string, p wire.SnapshotPayload) {
	_ = n.ep.Send(peer, wire.KindSnapshotResp,
		wire.SealEnvelope(n.key, wire.KindSnapshotResp, wire.EncodeSnapshot(p)))
	n.mu.Lock()
	n.stats.ChunksSent++
	n.mu.Unlock()
}

func (n *Node) handleSyncResp(env wire.Envelope) {
	// Only quorum members are trusted for catch-up data, and peers in
	// offer-rejection backoff are not read at all.
	if !n.quorum.Contains(env.Sender) || !n.offerGate(env.Sender) {
		return
	}
	resp, err := wire.DecodeSyncResp(env.Body)
	if err != nil || len(resp.Blocks) == 0 {
		return
	}
	c := n.Chain()
	// Resurrection guard: our own deletion manifest is authoritative.
	// Any offered block below the highest marker we recorded a deletion
	// for would re-introduce data the quorum erased — drop the whole
	// offer, whatever manifest head the sender claims, and give the
	// sender a strike toward offer suppression.
	floor := c.ResurrectionFloor()
	appended := false
	for _, raw := range resp.Blocks {
		b, err := block.DecodeBlock(raw)
		if err != nil {
			return
		}
		if b.Header.Number < floor {
			n.noteOfferRejected(env.Sender)
			return
		}
		if err := c.AppendBlock(b); err != nil {
			return // stale or diverged; a later gossip round retries
		}
		appended = true
		n.removeFromMempool(b.Entries)
	}
	if appended {
		n.noteOfferAccepted(env.Sender)
	}
	n.afterAppend()
}

// handleSnapshotResp streams a quorum peer's chunked snapshot offer into
// the chain restore pipeline. Chunk 0 opens a session — after the
// resurrection-floor check on the offered marker — and starts a consumer
// goroutine running chain.RestoreStream on a channel-fed block sequence;
// every in-order chunk decodes its blocks and feeds them through. Memory
// stays bounded by one chunk plus the restore pipeline's look-ahead, not
// by the offered chain's length. The final chunk closes the feed, and
// the restored chain is adopted (adoptRestored) only when it is
// integrity-clean and strictly ahead of the local head. Out-of-order,
// cross-offer, or non-contiguous chunks abort the session.
func (n *Node) handleSnapshotResp(env wire.Envelope) {
	if !n.quorum.Contains(env.Sender) || !n.offerGate(env.Sender) {
		return
	}
	p, err := wire.DecodeSnapshot(env.Body)
	if err != nil {
		return
	}
	n.mu.Lock()
	n.stats.ChunksReceived++
	n.mu.Unlock()
	sess := n.sess
	if p.Chunk == 0 {
		if sess != nil {
			if sess.sender == env.Sender {
				// The peer restarted its offer (e.g. after a crash):
				// drop the stale session and start over.
				n.abortSession(sess)
			} else {
				// One inbound offer at a time bounds restore work and
				// staging memory; competing offers retry via later
				// sync rounds.
				n.mu.Lock()
				n.stats.OffersIgnored++
				n.mu.Unlock()
				return
			}
		}
		// Resurrection guard: a snapshot anchored below our own recorded
		// deletion floor would hand back blocks this node witnessed the
		// quorum delete (e.g. a stale or malicious peer replaying an old
		// status quo). The floor outlives the blocks themselves — it is
		// re-seeded from the store's DELETIONS log on restart — so the
		// check holds even when the local chain was rebuilt from scratch.
		if p.Marker < n.Chain().ResurrectionFloor() {
			n.noteOfferRejected(env.Sender)
			return
		}
		sess = n.startSession(env.Sender, p.OfferID)
		n.mu.Lock()
		n.stats.OffersStarted++
		n.mu.Unlock()
	} else {
		if sess == nil || sess.sender != env.Sender {
			return // no session (or someone else's): drop the straggler
		}
		if err := wire.SnapshotChunkFollows(sess.last, p); err != nil {
			n.abortSession(sess) // gap, replay, or cross-offer interleave
			return
		}
	}
	// Feed the chunk's blocks to the restore consumer in order.
	for _, raw := range p.Blocks {
		b, derr := block.DecodeBlock(raw)
		if derr != nil {
			n.abortSession(sess)
			return
		}
		if !n.feedSession(sess, snapFeedItem{b: b}) {
			n.abortSession(sess)
			return
		}
	}
	sess.last = p
	sess.last.Blocks = nil
	if !p.Last {
		return
	}
	// Offer complete: close the feed, collect the restored chain.
	n.sess = nil
	close(sess.feed)
	r := <-sess.res
	if r.err != nil || r.c == nil {
		n.mu.Lock()
		n.stats.OffersAborted++
		n.mu.Unlock()
		return
	}
	if n.adoptRestored(r.c) {
		n.noteOfferAccepted(env.Sender)
		n.mu.Lock()
		n.stats.OffersCompleted++
		n.mu.Unlock()
		// The adopted chain may sit exactly on a summary boundary; the
		// adopter must join that vote like any appender would, or a
		// cluster with many freshly adopted nodes can starve the
		// threshold (seen in the crash-restart-storm drill).
		n.afterAppend()
	} else {
		n.mu.Lock()
		n.stats.OffersAborted++
		n.mu.Unlock()
	}
}

// startSession opens an inbound offer session and its restore consumer.
// The feed holds up to one full wire-max chunk so the delivery goroutine
// never blocks between chunks of a well-paced offer; the staged gauge
// tracks blocks parked in it.
func (n *Node) startSession(sender string, offerID uint64) *snapSession {
	sess := &snapSession{
		sender:  sender,
		offerID: offerID,
		feed:    make(chan snapFeedItem, wire.MaxSnapshotChunkBlocks),
		res:     make(chan snapResult, 1),
		dead:    make(chan struct{}),
	}
	n.sess = sess
	go func() {
		c, err := chain.RestoreStream(n.chainCfg, func(yield func(*block.Block, error) bool) {
			for {
				select {
				case it, ok := <-sess.feed:
					if !ok {
						return
					}
					n.staged.Add(-1)
					if !yield(it.b, it.err) || it.err != nil {
						return
					}
				case <-n.quit:
					yield(nil, errors.New("node: closed during snapshot restore"))
					return
				}
			}
		})
		close(sess.dead)
		if err == nil && c != nil {
			if verr := c.VerifyIntegrity(); verr != nil {
				c.Close()
				c, err = nil, verr
			}
		}
		sess.res <- snapResult{c: c, err: err}
	}()
	return sess
}

// feedSession hands one item to the session's consumer, maintaining the
// staged-blocks gauge. It returns false when the consumer is gone
// (restore already failed), so the caller aborts instead of wedging.
func (n *Node) feedSession(sess *snapSession, it snapFeedItem) bool {
	staged := n.staged.Add(1)
	for {
		peak := n.stagedPeak.Load()
		if staged <= peak || n.stagedPeak.CompareAndSwap(peak, staged) {
			break
		}
	}
	select {
	case sess.feed <- it:
		return true
	case <-sess.dead:
		n.staged.Add(-1)
		return false
	}
}

// abortSession tears down the active inbound offer: the feed is closed,
// the consumer's outcome is drained (closing any chain it built), and
// the staged gauge sheds whatever was still parked.
func (n *Node) abortSession(sess *snapSession) {
	if n.sess == sess {
		n.sess = nil
	}
	close(sess.feed)
	r := <-sess.res
	if r.c != nil {
		r.c.Close()
	}
	// Whatever the consumer never drained is no longer staged.
	for range sess.feed {
		n.staged.Add(-1)
	}
	n.mu.Lock()
	n.stats.OffersAborted++
	n.mu.Unlock()
}

// adoptRestored swaps the node onto a fully restored, integrity-checked
// chain when it is strictly ahead of the local head, re-pointing the
// local store at it — the old suffix below the new marker is physically
// deleted, exactly as if this node had executed the quorum's
// truncations itself. Returns whether the adoption happened; a rejected
// chain is closed here.
func (n *Node) adoptRestored(restored *chain.Chain) bool {
	// sealMu excludes the proposal pipeline for the whole adoption:
	// gossip and vote appends run on this same delivery goroutine, so
	// with the flusher held off, nothing can append to either chain
	// until the store is re-pointed — the persisted suffix can have no
	// gap between Attach's backfill and its listener registration.
	n.sealMu.Lock()
	defer n.sealMu.Unlock()
	n.mu.Lock()
	if n.closed || restored.Head().Number <= n.chain.Head().Number || restored.Marker() < n.chain.Marker() {
		n.mu.Unlock()
		restored.Close()
		return false
	}
	old := n.chain
	n.chain = restored
	n.tallies = make(map[uint64]*voteState)
	n.forked = false
	n.mu.Unlock()
	// Drain the old chain first (its compactor may still prune the
	// store with pre-adoption markers; the segment store rejects those
	// backwards marker moves), then re-point the store at the adopted
	// chain: Attach backfills the new live suffix and deletes
	// everything below the new marker.
	old.Close()
	if n.store != nil {
		if _, err := store.Attach(restored, n.store); err != nil {
			// The node keeps serving from memory, but persistence is
			// broken: surface it instead of silently restoring a
			// pre-adoption (quorum-deleted) suffix on the next restart.
			n.mu.Lock()
			n.storeErr = err
			n.mu.Unlock()
		}
	}
	return true
}

// StoreErr reports a persistence failure the node could not surface
// through a return value — today, a failed store re-point during
// snapshot adoption. A non-nil value means the store must not be
// trusted for a restart.
func (n *Node) StoreErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.storeErr
}

// removeFromMempool drops entries that were included in a block another
// node proposed.
func (n *Node) removeFromMempool(included []*block.Entry) {
	n.pool.Remove(included)
}

// afterAppend starts the summary-vote round if a summary slot is due.
func (n *Node) afterAppend() {
	c := n.Chain()
	if !c.NextIsSummary() {
		return
	}
	n.announceSummary(c)
}

// announceSummary computes the due summary block locally (§IV-B: every
// node builds Σ itself), records it as our position for the vote round,
// and emits the vote traffic the node's behaviour plans: an honest node
// broadcasts its vote, a withholder stays silent, an equivocator tells
// each half of the quorum a different hash (attack.PlanSummaryVotes).
// Safe to call repeatedly — re-announcement is the repair protocol for
// lost votes. With Config.VoteRetryInterval set, a retry timer re-runs
// this until the vote lands.
func (n *Node) announceSummary(c *chain.Chain) {
	local, err := c.BuildSummary()
	if err != nil {
		return
	}
	num := local.Header.Number
	marker := c.Marker() // marker before the shift; vote carries it for audit
	vote := wire.VotePayload{Number: num, Hash: local.Hash(), Marker: marker, Approve: true}

	n.mu.Lock()
	st := n.talliesFor(num)
	st.localHash = local.Hash()
	st.localSet = true
	n.mu.Unlock()

	peers := make([]string, 0, n.quorum.Size()-1)
	for _, m := range n.quorum.Members() {
		if m != n.name {
			peers = append(peers, m)
		}
	}
	sends, countSelf := attack.PlanSummaryVotes(n.byzantine, peers, vote)
	if n.ep != nil {
		for _, s := range sends {
			sealed := wire.SealEnvelope(n.key, wire.KindVote, wire.EncodeVote(s.Payload))
			if s.Peer == "" {
				n.ep.Broadcast(wire.KindVote, sealed)
			} else {
				_ = n.ep.Send(s.Peer, wire.KindVote, sealed)
			}
		}
	}
	if countSelf {
		n.recordVote(n.name, vote)
	} else {
		// Votes may already have arrived before our position was set;
		// re-evaluate the tally without announcing anything.
		n.maybeApplySummary(num)
	}
	if c.NextIsSummary() {
		n.armVoteRetry()
	}
}

// armVoteRetry schedules a vote re-announcement if self-driving retries
// are configured and none is already pending. The timer is one-shot and
// re-arms from its own firing while the summary stays pending, so a
// settled vote leaves no timer behind.
func (n *Node) armVoteRetry() {
	if n.voteRetry <= 0 || n.ep == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.retryTimer != nil {
		return
	}
	n.retryTimer = time.AfterFunc(n.voteRetry, n.voteRetryFire)
}

func (n *Node) voteRetryFire() {
	n.mu.Lock()
	n.retryTimer = nil
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return
	}
	c := n.Chain()
	if !c.NextIsSummary() {
		return
	}
	n.announceSummary(c) // re-arms while still pending
}

func (n *Node) talliesFor(num uint64) *voteState {
	st, ok := n.tallies[num]
	if !ok {
		st = &voteState{
			counts:   make(map[codec.Hash]int),
			voted:    make(map[string]codec.Hash),
			evidence: make(map[string]map[codec.Hash][]byte),
			relayed:  make(map[string]map[codec.Hash]bool),
		}
		n.tallies[num] = st
	}
	return st
}

func (n *Node) handleVote(env wire.Envelope) {
	v, err := wire.DecodeVote(env.Body)
	if err != nil || !v.Approve {
		return
	}
	if !n.quorum.Contains(env.Sender) {
		return
	}
	if n.observeVote(env, v) {
		return // flagged equivocator (previously or just now): not counted
	}
	n.recordVote(env.Sender, v)
	// A vote for a round beyond our head means we missed blocks: sync.
	if v.Number > n.Chain().Head().Number+1 {
		n.requestSync(env.Sender)
		return
	}
	// Answer announcements (never answers): repairs lost votes. Repair
	// votes themselves are counted above but not answered, so the repair
	// protocol cannot loop. A vote-withholding member never answers.
	if !v.Repair && n.byzantine != attack.VoteWithholding {
		n.answerVote(env.Sender, v.Number)
	}
}

// handleVoteEvidence ingests a relayed third-party vote: the body is the
// relayed sender's original signed envelope, verified against the same
// registry, so a relayer cannot fabricate votes — only repeat them. The
// inner vote flows through the same observation and tally path as a
// direct one (without triggering answers or further relays of relays),
// which is how conflicting votes shown to different halves of the quorum
// end up side by side at every member.
func (n *Node) handleVoteEvidence(env wire.Envelope) {
	inner, err := wire.OpenEnvelope(n.Chain().Registry(), env.Body)
	if err != nil || inner.Kind != wire.KindVote {
		return
	}
	v, err := wire.DecodeVote(inner.Body)
	if err != nil || !v.Approve {
		return
	}
	if !n.quorum.Contains(inner.Sender) || inner.Sender == n.name {
		return
	}
	if n.observeVote(inner, v) {
		return
	}
	n.recordVote(inner.Sender, v)
}

// observeVote is the equivocation screen on every counted vote. It
// archives the signed envelope as evidence for (round, sender, hash),
// flags the sender once two conflicting hashes are on file (retracting
// its counted vote and broadcasting both proofs), and relays any vote
// that disagrees with our own locally built summary so the rest of the
// quorum sees what we were told. Returns true when the vote must not be
// counted (sender already flagged, or flagged by this very vote).
func (n *Node) observeVote(env wire.Envelope, v wire.VotePayload) bool {
	n.mu.Lock()
	if n.equivocators[env.Sender] {
		n.mu.Unlock()
		return true
	}
	if env.Sender == n.name {
		n.mu.Unlock()
		return false
	}
	st := n.talliesFor(v.Number)
	byHash := st.evidence[env.Sender]
	if byHash == nil {
		byHash = make(map[codec.Hash][]byte)
		st.evidence[env.Sender] = byHash
	}
	if _, ok := byHash[v.Hash]; !ok && len(byHash) < 2 {
		byHash[v.Hash] = wire.EncodeEnvelope(env)
	}
	var proofs [][]byte
	if len(byHash) >= 2 {
		for _, raw := range byHash {
			proofs = append(proofs, raw)
		}
		n.markEquivocatorLocked(env.Sender)
	}
	var relay []byte
	if proofs == nil && st.localSet && v.Hash != st.localHash {
		seen := st.relayed[env.Sender]
		if seen == nil {
			seen = make(map[codec.Hash]bool)
			st.relayed[env.Sender] = seen
		}
		if !seen[v.Hash] {
			seen[v.Hash] = true
			relay = wire.EncodeEnvelope(env)
		}
	}
	n.mu.Unlock()

	if n.ep != nil {
		for _, raw := range proofs {
			n.ep.Broadcast(wire.KindVoteEvidence, wire.SealEnvelope(n.key, wire.KindVoteEvidence, raw))
		}
		if relay != nil {
			n.ep.Broadcast(wire.KindVoteEvidence, wire.SealEnvelope(n.key, wire.KindVoteEvidence, relay))
		}
	}
	return proofs != nil
}

// markEquivocatorLocked flags sender and retracts any votes of theirs
// already counted in open tallies. Caller holds mu. Applied rounds stay
// applied — the retraction protects undecided rounds; a decided one was
// reached by honest votes alone or not at all (conflicting minority
// hashes can never reach the majority threshold).
func (n *Node) markEquivocatorLocked(sender string) {
	if n.equivocators[sender] {
		return
	}
	n.equivocators[sender] = true
	for _, st := range n.tallies {
		if h, ok := st.voted[sender]; ok {
			st.counts[h]--
			if st.counts[h] <= 0 {
				delete(st.counts, h)
			}
			delete(st.voted, sender)
		}
	}
}

// answerVote unicasts our own vote for round num back to peer, marked as
// a repair answer.
func (n *Node) answerVote(peer string, num uint64) {
	if n.ep == nil {
		return
	}
	n.mu.Lock()
	st := n.tallies[num]
	send := st != nil && st.localSet
	var local codec.Hash
	if send {
		local = st.localHash
	}
	n.mu.Unlock()
	if !send {
		return
	}
	vote := wire.VotePayload{
		Number: num, Hash: local, Marker: n.Chain().Marker(),
		Approve: true, Repair: true,
	}
	_ = n.ep.Send(peer, wire.KindVote, wire.SealEnvelope(n.key, wire.KindVote, wire.EncodeVote(vote)))
}

func (n *Node) recordVote(sender string, v wire.VotePayload) {
	n.mu.Lock()
	st := n.talliesFor(v.Number)
	if _, ok := st.voted[sender]; ok {
		n.mu.Unlock()
		return
	}
	st.voted[sender] = v.Hash
	st.counts[v.Hash]++
	n.mu.Unlock()
	n.maybeApplySummary(v.Number)
}

// maybeApplySummary appends the locally built summary once a quorum
// majority voted for the same hash. A majority on a different hash means
// this node's state diverged: it marks itself forked (§IV-B: "In case of
// a failure, the hash of the blocks are different, which would result in
// a fork").
func (n *Node) maybeApplySummary(num uint64) {
	n.mu.Lock()
	st := n.tallies[num]
	if st == nil || st.applied || !st.localSet {
		n.mu.Unlock()
		return
	}
	threshold := n.quorum.Threshold()
	var winner codec.Hash
	decided := false
	for h, count := range st.counts {
		if count >= threshold {
			winner, decided = h, true
			break
		}
	}
	if !decided {
		n.mu.Unlock()
		return
	}
	st.applied = true
	local := st.localHash
	n.mu.Unlock()

	if winner != local {
		n.mu.Lock()
		n.forked = true
		n.mu.Unlock()
		return
	}
	c := n.Chain()
	summary, err := c.BuildSummary()
	if err != nil {
		return // already appended via another path
	}
	if summary.Hash() != winner {
		n.mu.Lock()
		n.forked = true
		n.mu.Unlock()
		return
	}
	_ = c.AppendBlock(summary)
	// Clean up old tallies to bound memory.
	n.mu.Lock()
	for old := range n.tallies {
		if old+16 < num {
			delete(n.tallies, old)
		}
	}
	n.mu.Unlock()
}

func (n *Node) handleStatusReq(env wire.Envelope) {
	req := codec.NewDecoder(env.Body)
	reqID := req.Uint64()
	if req.Finish() != nil {
		return
	}
	c := n.Chain()
	head := c.Head()
	n.mu.Lock()
	forked := n.forked
	n.mu.Unlock()
	resp := wire.StatusPayload{
		ReqID:      reqID,
		HeadNumber: head.Number,
		HeadHash:   head.Hash(),
		Marker:     c.Marker(),
		Forked:     forked,
	}
	if n.ep != nil {
		_ = n.ep.Send(env.Sender, wire.KindStatusResp, wire.SealEnvelope(n.key, wire.KindStatusResp, wire.EncodeStatus(resp)))
	}
}

func (n *Node) handleLookupReq(env wire.Envelope) {
	req, err := wire.DecodeLookupReq(env.Body)
	if err != nil || n.ep == nil {
		return
	}
	resp := n.buildLookupResp(req)
	_ = n.ep.Send(env.Sender, wire.KindLookupResp, wire.SealEnvelope(n.key, wire.KindLookupResp, wire.EncodeLookupResp(resp)))
}

func (n *Node) buildLookupResp(req wire.LookupReqPayload) wire.LookupRespPayload {
	resp := wire.LookupRespPayload{ReqID: req.ReqID}
	c := n.Chain()
	ref := block.Ref{Block: req.RefBlock, Entry: req.RefEntry}
	entry, loc, ok := c.Lookup(ref)
	if !ok {
		return resp
	}
	holder, ok := c.Block(loc.Block)
	if !ok {
		return resp
	}
	proof, err := holder.EntryProof(loc.Index)
	if err != nil {
		return resp
	}
	resp.Found = true
	resp.Entry = entry.Encode()
	resp.Carried = loc.Carried
	resp.HolderBlock = holder.Header.Encode()
	resp.LeafIndex = uint32(proof.Index)
	resp.LeafCount = uint32(proof.LeafCount)
	for _, sib := range proof.Siblings {
		resp.ProofSibs = append(resp.ProofSibs, append([]byte(nil), sib[:]...))
	}
	if loc.Carried {
		resp.LeafBytes = holder.Carried[loc.Index].Encode()
	} else {
		resp.LeafBytes = holder.Entries[loc.Index].Encode()
	}
	return resp
}

// CorruptForTest mutates the node's deletion-mark state so its next
// summary diverges — used by the fork-detection tests (E11) to model a
// faulty or malicious node. It marks the given ref deleted without any
// authorization.
func (n *Node) CorruptForTest(ref block.Ref) {
	n.Chain().InjectMarkForTest(ref)
}
