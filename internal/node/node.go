package node

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"time"

	"github.com/seldel/seldel/internal/attack"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/deletion"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/store"
	"github.com/seldel/seldel/internal/wire"
)

// Config assembles an anchor node.
type Config struct {
	// Key is the node's network identity; it must be registered in the
	// chain registry (the quorum's "master signature" role, §IV-D.1).
	Key *identity.KeyPair
	// Chain is the chain configuration. Every quorum member must use
	// identical parameters, or summaries diverge.
	Chain chain.Config
	// Engine seals and verifies normal blocks.
	Engine consensus.Engine
	// Quorum is the anchor-node set voting on marker shifts.
	Quorum *consensus.Quorum
	// Network connects the node to its peers.
	Network *netsim.Network
	// Store, when set, persists the node's chain. A populated store is
	// restored from at startup — starting at its snapshot checkpoint,
	// so only the live suffix is replayed — and an empty one is
	// mirrored from genesis. The store stays the caller's to close
	// (after Node.Close), like seldel.WithStore.
	Store store.Store
	// Byzantine fault-injects the node for the scenario suite; the
	// zero value is an honest node. See internal/attack.Behavior.
	Byzantine attack.Behavior
	// FillerInterval rate-limits the empty-pool filler block Propose
	// seals to keep retention ticking (§IV-D.3): with a non-zero
	// interval, an empty-pool Propose within the interval of the last
	// filler returns ErrFillerThrottled instead of minting another
	// empty block. Zero keeps the historical behaviour — every
	// empty-pool Propose seals a filler — which deterministic drivers
	// rely on.
	FillerInterval time.Duration
}

// ErrSummaryPending is returned while the quorum vote for the due
// summary block is still incomplete (e.g. votes were lost on a lossy
// network, or the node sits in a minority partition); the node
// re-announces its vote and the caller retries once the network
// settles.
var ErrSummaryPending = errors.New("node: summary vote pending")

// ErrFillerThrottled is returned by Propose when the pool is empty and
// the configured Config.FillerInterval since the last filler block has
// not yet elapsed: the chain does not need another empty block before
// the next retention tick.
var ErrFillerThrottled = errors.New("node: filler block throttled")

// ErrClosed is returned by writes after Close. It wraps the pipeline's
// closed sentinel, so applications classify both with one errors.Is
// against the root façade's ErrClosed.
var ErrClosed = fmt.Errorf("node: %w", mempool.ErrClosed)

// summaryWait bounds how long a pipeline seal blocks waiting for a due
// summary vote to complete before reporting ErrSummaryPending. On an
// in-process network the vote settles in microseconds; the budget only
// matters under partitions and message loss, where failing fast (and
// letting the caller retry after re-announce) beats stalling the
// flusher.
const summaryWait = 25 * time.Millisecond

// voteState tracks the quorum votes for one pending summary block.
type voteState struct {
	counts    map[codec.Hash]int
	voted     map[string]bool
	localHash codec.Hash
	localSet  bool
	applied   bool
}

// Node is one anchor node.
type Node struct {
	mu       sync.Mutex
	name     string
	key      *identity.KeyPair
	chain    *chain.Chain // guarded by mu for the rare status-quo adoption swap
	chainCfg chain.Config // engine-wired config, reused by adoptSnapshot
	engine   consensus.Engine
	quorum   *consensus.Quorum
	ep       *netsim.Endpoint
	store    store.Store
	pool     *mempool.Pool    // deduplicating pending set fed by gossip
	prop     *mempool.Batcher // proposal pipeline; its sealer is proposer
	// sealMu serializes block proposals: the pipeline flusher and the
	// empty-slot filler path both seal through it, so they never race
	// each other for the head slot.
	sealMu    sync.Mutex
	tallies   map[uint64]*voteState
	forked    bool
	byzantine attack.Behavior
	closed    bool
	storeErr  error // persistence failure during snapshot adoption
	// fillerEvery/lastFiller implement the Config.FillerInterval rate
	// limit on empty-pool filler blocks; lastFiller is guarded by mu.
	fillerEvery time.Duration
	lastFiller  time.Time
}

// New creates an anchor node and joins it to the network. With a
// populated Config.Store the chain is restored from the store's
// snapshot checkpoint (the restart path); otherwise a fresh genesis is
// created.
func New(cfg Config) (*Node, error) {
	if cfg.Key == nil {
		return nil, errors.New("node: missing key")
	}
	if !cfg.Byzantine.Valid() {
		return nil, fmt.Errorf("node: unknown byzantine behaviour %d", cfg.Byzantine)
	}
	if cfg.Engine == nil {
		cfg.Engine = consensus.NoOp{}
	}
	if cfg.Quorum == nil {
		q, err := consensus.NewQuorum([]string{cfg.Key.Name()})
		if err != nil {
			return nil, err
		}
		cfg.Quorum = q
	}
	chainCfg := cfg.Chain
	consensus.Configure(&chainCfg, cfg.Engine)
	c, err := openChain(chainCfg, cfg.Store)
	if err != nil {
		return nil, err
	}
	n := &Node{
		name:        cfg.Key.Name(),
		key:         cfg.Key,
		chain:       c,
		chainCfg:    chainCfg,
		engine:      cfg.Engine,
		quorum:      cfg.Quorum,
		store:       cfg.Store,
		pool:        mempool.NewPool(),
		tallies:     make(map[uint64]*voteState),
		byzantine:   cfg.Byzantine,
		fillerEvery: cfg.FillerInterval,
	}
	n.prop = mempool.NewBatcher(proposer{n}, mempool.Options{Warm: n.warmEntries})
	if cfg.Network != nil {
		ep, err := cfg.Network.Join(n.name, n.handle)
		if err != nil {
			n.prop.Close()
			c.Close()
			return nil, err
		}
		n.ep = ep
	}
	return n, nil
}

// openChain builds the node's chain: restored from a populated store
// (which streams from its snapshot checkpoint), mirrored into an empty
// one, stand-alone without one.
func openChain(cfg chain.Config, s store.Store) (*chain.Chain, error) {
	if s == nil {
		return chain.New(cfg)
	}
	_, _, populated, err := s.Range()
	if err != nil {
		return nil, fmt.Errorf("node: probing store: %w", err)
	}
	if populated {
		c, _, err := store.OpenChain(cfg, s)
		return c, err
	}
	c, err := chain.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := store.Attach(c, s); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close detaches the node from the network, drains its proposal
// pipeline, and closes the chain. The store (if any) stays open for
// the caller — a restarted node reopens it via Config.Store.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	// Drain the proposal pipeline while still on the network: queued
	// submissions may land on a due summary slot, and completing that
	// vote needs the peers' answers to still reach us. Only then leave.
	err := n.prop.Close()
	if n.ep != nil {
		n.ep.Leave()
	}
	// Leave stops new deliveries but the endpoint's goroutine may still
	// be draining queued messages — including a snapshot adoption that
	// swaps n.chain. sealMu serializes with that adoption (which checks
	// closed and aborts once we hold it), so exactly one chain survives
	// to be closed here and none leaks.
	n.sealMu.Lock()
	cerr := n.Chain().Close()
	n.sealMu.Unlock()
	if err == nil {
		err = cerr
	}
	return err
}

// Name returns the node's identity name.
func (n *Node) Name() string { return n.name }

// Chain exposes the node's chain (read-mostly; concurrent-safe). The
// pointer may change when the node adopts a new status quo after falling
// behind the quorum's Genesis marker.
func (n *Node) Chain() *chain.Chain {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.chain
}

// Stats snapshots the current chain's size and deletion counters — the
// read surface a serving front-end exposes without reaching through
// Chain() (which may be swapped by a status-quo adoption mid-call).
func (n *Node) Stats() chain.Stats { return n.Chain().Stats() }

// EntriesSeq streams the current chain's live entries with their stable
// references. The snapshot is taken when iteration starts; a concurrent
// status-quo adoption affects later calls, not a stream in progress.
func (n *Node) EntriesSeq() iter.Seq2[block.Ref, *block.Entry] {
	return n.Chain().EntriesSeq()
}

// Tombstones returns the current chain's deletion audit records, oldest
// first, waiting out pending compactions like chain.Chain.Tombstones.
func (n *Node) Tombstones(ctx context.Context) ([]manifest.Record, error) {
	return n.Chain().Tombstones(ctx)
}

// ProveDeleted builds the deletion proof for ref against the current
// chain's tombstone layer.
func (n *Node) ProveDeleted(ref block.Ref) (*chain.DeletedProof, error) {
	return n.Chain().ProveDeleted(ref)
}

// Forked reports whether the node detected divergence from the quorum.
func (n *Node) Forked() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.forked
}

// MempoolSize returns the number of pending gossip entries.
func (n *Node) MempoolSize() int {
	return n.pool.Len()
}

// handle dispatches incoming network messages. It runs on the endpoint's
// delivery goroutine.
func (n *Node) handle(msg netsim.Message) {
	env, err := wire.OpenEnvelope(n.Chain().Registry(), msg.Payload)
	if err != nil {
		return // unauthenticated message: drop
	}
	switch env.Kind {
	case wire.KindEntry:
		n.handleEntry(env)
	case wire.KindBlock:
		n.handleBlock(env)
	case wire.KindVote:
		n.handleVote(env)
	case wire.KindStatusReq:
		n.handleStatusReq(env)
	case wire.KindLookupReq:
		n.handleLookupReq(env)
	case wire.KindSyncReq:
		n.handleSyncReq(env)
	case wire.KindSyncResp:
		n.handleSyncResp(env)
	case wire.KindSnapshotResp:
		n.handleSnapshotResp(env)
	}
}

func (n *Node) handleEntry(env wire.Envelope) {
	e, err := block.DecodeEntry(env.Body)
	if err != nil {
		return
	}
	n.AddToMempool(e)
}

// screenEntry is the gossip intake filter: entry signatures verify
// through the chain's verification pool, and deletion requests
// batch-precheck their co-signatures the same way — both warm the
// verified-signature cache, so the later proposal-time validation of
// the same entry resolves from cache. A deletion request carrying a
// cryptographically invalid co-signature is dropped here (it could
// never create a mark); stateful cohesion failures still go on-chain
// and are rejected as marks ("wrong requests … have no further
// effects", §V).
func (n *Node) screenEntry(e *block.Entry) bool {
	c := n.Chain()
	if err := c.Verifier().Entries(c.Registry(), []*block.Entry{e}); err != nil {
		return false
	}
	if e.Kind == block.KindDeletion {
		if pre := deletion.PrecheckRequest(c.Verifier(), c.Registry(), e); pre.BadSigner != "" {
			return false
		}
	}
	return true
}

// AddToMempool queues an entry for inclusion in the next proposed
// block. Duplicates (by content hash) are ignored by the pending pool;
// the signature screen runs through the chain's verification pool.
func (n *Node) AddToMempool(e *block.Entry) {
	if !n.screenEntry(e) {
		return
	}
	n.pool.Add(e)
}

// warmEntries pre-verifies a submitted group while its batch is still
// assembling: entry signatures and deletion co-signatures populate the
// verified-signature cache, so the sealing flush re-checks them for
// cache hits instead of Ed25519 cost.
func (n *Node) warmEntries(entries []*block.Entry) {
	c := n.Chain()
	c.Verifier().Warm(c.Registry(), entries)
	for _, e := range entries {
		if e.Kind == block.KindDeletion {
			deletion.PrecheckRequest(c.Verifier(), c.Registry(), e)
		}
	}
}

// proposer adapts the node's proposal path to the batching pipeline's
// Ledger interface: sealed batches become proposed blocks.
type proposer struct{ n *Node }

// Seal implements mempool.Ledger.
func (p proposer) Seal(entries []*block.Entry) ([]*block.Block, []mempool.MarkOutcome, error) {
	return p.n.sealProposal(entries)
}

// ValidateEntries implements mempool.Ledger.
func (p proposer) ValidateEntries(entries []*block.Entry) error {
	return p.n.Chain().ValidateEntries(entries)
}

// sealProposal is the node's single sealing path: build a normal block
// from the batch, seal it with the consensus engine, append it, gossip
// it, and kick the summary vote when the next slot is a summary slot.
// When that next slot is ALREADY a summary slot, the proposal must wait
// for the quorum vote to land the summary first; if the vote does not
// complete within the budget (lost votes, minority partition), the
// batch fails with ErrSummaryPending and the pipeline's retry/receipt
// machinery reports it to the callers.
func (n *Node) sealProposal(entries []*block.Entry) ([]*block.Block, []mempool.MarkOutcome, error) {
	n.sealMu.Lock()
	defer n.sealMu.Unlock()
	c := n.Chain()
	if c.NextIsSummary() {
		if !n.waitSummaryApplied(c) {
			return nil, nil, ErrSummaryPending
		}
		c = n.Chain()
	}
	b, err := c.BuildNormal(entries)
	if err != nil {
		return nil, nil, err
	}
	if err := n.engine.Seal(b); err != nil {
		return nil, nil, fmt.Errorf("node: seal: %w", err)
	}
	outcomes, err := c.AppendBlockOutcomes(b)
	if err != nil {
		return nil, nil, err
	}
	if n.ep != nil {
		n.ep.Broadcast(wire.KindBlock, wire.SealEnvelope(n.key, wire.KindBlock, b.Encode()))
	}
	n.afterAppend()
	return []*block.Block{b}, outcomes, nil
}

// waitSummaryApplied announces our vote for the due summary block and
// polls briefly for the quorum decision to apply it. It reports whether
// the summary landed (votes are applied by the network delivery
// goroutines, so polling — not re-entering the tally — is correct
// here).
func (n *Node) waitSummaryApplied(c *chain.Chain) bool {
	n.announceSummary(c)
	deadline := time.Now().Add(summaryWait)
	for c.NextIsSummary() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
	return true
}

// Submit enqueues entries into the node's proposal pipeline and returns
// one Receipt per entry: the concurrent local write path. Entries from
// many goroutines coalesce into proposed blocks exactly like a
// single-process chain's Submit; each receipt resolves to the entry's
// stable Ref (and deletion-mark outcome) once its block is sealed and
// gossiped. Entries reach the peers inside the sealed block — a
// receipt therefore implies the entry is on the node's chain and on the
// wire to every reachable peer.
func (n *Node) Submit(ctx context.Context, entries ...*block.Entry) ([]mempool.Receipt, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	return n.prop.Submit(ctx, entries...)
}

// SubmitWait submits entries and blocks until every receipt resolves,
// failing fast on the first per-entry error.
func (n *Node) SubmitWait(ctx context.Context, entries ...*block.Entry) ([]mempool.Sealed, error) {
	receipts, err := n.Submit(ctx, entries...)
	if err != nil {
		return nil, err
	}
	out := make([]mempool.Sealed, len(receipts))
	for i, r := range receipts {
		s, err := r.Wait(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// PipelineStats returns the node's proposal-pipeline counters (sealed
// batches, receipts, backpressure) merged with the chain's
// verification, compaction, and index gauges.
func (n *Node) PipelineStats() mempool.Stats {
	s := n.prop.Stats()
	cs := n.Chain().PipelineStats()
	s.Verify = cs.Verify
	s.Compaction = cs.Compaction
	s.Index = cs.Index
	return s
}

// SubmitLocal queues an entry as if received from a client and gossips
// it to the peer anchors — the replicated-mempool flow driven by an
// explicit Propose (deterministic simulations, the demo CLI). For the
// pipelined flow, use Submit.
func (n *Node) SubmitLocal(e *block.Entry) {
	n.AddToMempool(e)
	if n.ep != nil {
		n.ep.Broadcast(wire.KindEntry, wire.SealEnvelope(n.key, wire.KindEntry, e.Encode()))
	}
}

// Propose drains the pending gossip pool through the proposal pipeline:
// one block holding every pending entry that still validates (invalid
// ones are rejected per-entry by the pipeline, mirroring "wrong
// requests … have no further effects"). With an empty pool it proposes
// a filler block (§IV-D.3). While the summary vote for a due summary
// slot is incomplete it re-announces our vote and returns
// ErrSummaryPending; the caller retries once the network settles.
func (n *Node) Propose() (*block.Block, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	c := n.Chain()
	if c.NextIsSummary() {
		// Re-announce ours; peers answer with theirs, repairing lost
		// votes. Retried by the caller rather than blocking here, so
		// deterministic drivers stay in control of time.
		n.announceSummary(c)
		if c.NextIsSummary() {
			return nil, ErrSummaryPending
		}
	}
	entries := n.pool.Take()
	ctx := context.Background()
	receipts, err := n.prop.Submit(ctx, entries...)
	if err != nil {
		n.pool.Requeue(entries)
		return nil, err
	}
	var sealed *block.Block
	var pending []*block.Entry // failed only on the stuck vote, still valid
	var firstErr error
	for i, r := range receipts {
		s, err := r.Wait(ctx)
		if err != nil {
			if errors.Is(err, ErrSummaryPending) {
				pending = append(pending, entries[i])
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if sealed == nil {
			if b, ok := n.Chain().Block(s.Block); ok {
				sealed = b
			}
		}
	}
	// Entries that failed only because the summary vote is incomplete
	// were never sealed and still validate: they survive for the retry,
	// whatever errors OTHER entries of the batch resolved with.
	n.pool.Requeue(pending)
	if sealed != nil {
		return sealed, nil
	}
	if len(pending) > 0 {
		return nil, ErrSummaryPending
	}
	// Empty pool, or every entry was rejected: the slot still gets its
	// (possibly empty) block, like a retention tick. A truly empty pool
	// is rate-limited to the configured filler interval, so idle nodes
	// do not mint chains of empty blocks between retention ticks.
	if len(entries) == 0 && !n.fillerDue() {
		return nil, ErrFillerThrottled
	}
	blocks, _, err := n.sealProposal(nil)
	if err != nil {
		return nil, err
	}
	return blocks[0], nil
}

// fillerDue reports whether an empty-pool filler block may be sealed
// now, stamping the throttle window when it is. With no configured
// interval every filler is due, preserving deterministic drivers that
// call Propose on their own clock.
func (n *Node) fillerDue() bool {
	if n.fillerEvery <= 0 {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	if !n.lastFiller.IsZero() && now.Sub(n.lastFiller) < n.fillerEvery {
		return false
	}
	n.lastFiller = now
	return true
}

func (n *Node) handleBlock(env wire.Envelope) {
	b, err := block.DecodeBlock(env.Body)
	if err != nil {
		return
	}
	c := n.Chain()
	if err := c.AppendBlock(b); err != nil {
		// A gap means we fell behind (e.g. a healed partition): ask the
		// sender for the missing suffix (§V-B.4 recovery via anchors).
		if errors.Is(err, chain.ErrNotNext) && b.Header.Number > c.Head().Number+1 {
			n.requestSync(env.Sender)
		}
		// Otherwise: stale or conflicting block. A summary mismatch means
		// WE may be the forked party only if the majority agrees with the
		// sender; that is decided by the vote, not here.
		return
	}
	n.removeFromMempool(b.Entries)
	n.afterAppend()
}

// requestSync asks peer for everything after our head.
func (n *Node) requestSync(peer string) {
	if n.ep == nil {
		return
	}
	body := wire.EncodeSyncReq(wire.SyncReqPayload{HeadNumber: n.Chain().Head().Number})
	_ = n.ep.Send(peer, wire.KindSyncReq, wire.SealEnvelope(n.key, wire.KindSyncReq, body))
}

// handleSyncReq serves catch-up data. A requester still inside our live
// window gets the incremental suffix it can append directly; one whose
// continuation point was already truncated away gets the
// snapshot-anchored status quo instead — marker, head, and the live
// blocks — which it adopts wholesale (the marker block "is a trusted
// anchor … already approved by the anchor nodes", §IV-C).
func (n *Node) handleSyncReq(env wire.Envelope) {
	if n.ep == nil {
		return
	}
	req, err := wire.DecodeSyncReq(env.Body)
	if err != nil {
		return
	}
	c := n.Chain()
	from := req.HeadNumber + 1
	if from < c.Marker() {
		n.sendSnapshot(env.Sender, c)
		return
	}
	resp := wire.SyncRespPayload{}
	if head, ok := c.TombstoneHead(); ok {
		resp.ManifestSeq = head.Seq
		resp.ManifestMarker = head.NewMarker
	}
	for b := range c.BlocksSeq() {
		if b.Header.Number < from {
			continue
		}
		// Incremental catch-up may be partial: the requester appends
		// what fits under the wire bound, and the gap its next gossip
		// reveals triggers another sync round for the rest.
		if len(resp.Blocks) == wire.MaxSyncBlocks {
			break
		}
		resp.Blocks = append(resp.Blocks, b.Encode())
	}
	if len(resp.Blocks) == 0 {
		return
	}
	_ = n.ep.Send(env.Sender, wire.KindSyncResp,
		wire.SealEnvelope(n.key, wire.KindSyncResp, wire.EncodeSyncResp(resp)))
}

// sendSnapshot unicasts our snapshot-anchored live chain to peer. The
// marker and head are taken from the streamed blocks themselves, so the
// payload is internally consistent even if a truncation lands
// concurrently.
func (n *Node) sendSnapshot(peer string, c *chain.Chain) {
	var p wire.SnapshotPayload
	if head, ok := c.TombstoneHead(); ok {
		p.ManifestSeq = head.Seq
		p.ManifestMarker = head.NewMarker
	}
	for b := range c.BlocksSeq() {
		if len(p.Blocks) == 0 {
			p.Marker = b.Header.Number
		}
		p.Head = b.Header.Number
		p.Blocks = append(p.Blocks, b.Encode())
	}
	if len(p.Blocks) == 0 || len(p.Blocks) > wire.MaxSyncBlocks {
		// A live window beyond the wire bound cannot ship as one
		// snapshot — the receiver would reject it on decode, so don't
		// waste the send (ROADMAP: chunked snapshot streaming).
		return
	}
	_ = n.ep.Send(peer, wire.KindSnapshotResp,
		wire.SealEnvelope(n.key, wire.KindSnapshotResp, wire.EncodeSnapshot(p)))
}

func (n *Node) handleSyncResp(env wire.Envelope) {
	// Only quorum members are trusted for catch-up data.
	if !n.quorum.Contains(env.Sender) {
		return
	}
	resp, err := wire.DecodeSyncResp(env.Body)
	if err != nil || len(resp.Blocks) == 0 {
		return
	}
	c := n.Chain()
	// Resurrection guard: our own deletion manifest is authoritative.
	// Any offered block below the highest marker we recorded a deletion
	// for would re-introduce data the quorum erased — drop the whole
	// offer, whatever manifest head the sender claims.
	floor := c.ResurrectionFloor()
	for _, raw := range resp.Blocks {
		b, err := block.DecodeBlock(raw)
		if err != nil {
			return
		}
		if b.Header.Number < floor {
			return
		}
		if err := c.AppendBlock(b); err != nil {
			return // stale or diverged; a later gossip round retries
		}
		n.removeFromMempool(b.Entries)
	}
	n.afterAppend()
}

// handleSnapshotResp adopts a quorum peer's snapshot-anchored status
// quo: the payload's blocks stream through the chain restore pipeline
// (decode → pool-verify → register, with the look-ahead window), the
// restored chain is integrity-checked, and adoption happens only when
// it is strictly ahead of the local head. The local store, if any, is
// re-pointed at the adopted chain — the old suffix below the new marker
// is physically deleted, exactly as if this node had executed the
// quorum's truncations itself.
func (n *Node) handleSnapshotResp(env wire.Envelope) {
	if !n.quorum.Contains(env.Sender) {
		return
	}
	p, err := wire.DecodeSnapshot(env.Body)
	if err != nil {
		return
	}
	// Resurrection guard: a snapshot anchored below our own recorded
	// deletion floor would hand back blocks this node witnessed the
	// quorum delete (e.g. a stale or malicious peer replaying an old
	// status quo). The floor outlives the blocks themselves — it is
	// re-seeded from the store's DELETIONS log on restart — so the check
	// holds even when the local chain was rebuilt from scratch.
	if p.Marker < n.Chain().ResurrectionFloor() {
		return
	}
	restored, err := chain.RestoreStream(n.chainCfg, func(yield func(*block.Block, error) bool) {
		for _, raw := range p.Blocks {
			b, err := block.DecodeBlock(raw)
			if !yield(b, err) || err != nil {
				return
			}
		}
	})
	if err != nil {
		return
	}
	if err := restored.VerifyIntegrity(); err != nil {
		restored.Close()
		return
	}
	// sealMu excludes the proposal pipeline for the whole adoption:
	// gossip and vote appends run on this same delivery goroutine, so
	// with the flusher held off, nothing can append to either chain
	// until the store is re-pointed — the persisted suffix can have no
	// gap between Attach's backfill and its listener registration.
	n.sealMu.Lock()
	defer n.sealMu.Unlock()
	n.mu.Lock()
	if n.closed || restored.Head().Number <= n.chain.Head().Number || restored.Marker() < n.chain.Marker() {
		n.mu.Unlock()
		restored.Close()
		return
	}
	old := n.chain
	n.chain = restored
	n.tallies = make(map[uint64]*voteState)
	n.forked = false
	n.mu.Unlock()
	// Drain the old chain first (its compactor may still prune the
	// store with pre-adoption markers; the segment store rejects those
	// backwards marker moves), then re-point the store at the adopted
	// chain: Attach backfills the new live suffix and deletes
	// everything below the new marker.
	old.Close()
	if n.store != nil {
		if _, err := store.Attach(restored, n.store); err != nil {
			// The node keeps serving from memory, but persistence is
			// broken: surface it instead of silently restoring a
			// pre-adoption (quorum-deleted) suffix on the next restart.
			n.mu.Lock()
			n.storeErr = err
			n.mu.Unlock()
		}
	}
}

// StoreErr reports a persistence failure the node could not surface
// through a return value — today, a failed store re-point during
// snapshot adoption. A non-nil value means the store must not be
// trusted for a restart.
func (n *Node) StoreErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.storeErr
}

// removeFromMempool drops entries that were included in a block another
// node proposed.
func (n *Node) removeFromMempool(included []*block.Entry) {
	n.pool.Remove(included)
}

// afterAppend starts the summary-vote round if a summary slot is due.
func (n *Node) afterAppend() {
	c := n.Chain()
	if !c.NextIsSummary() {
		return
	}
	n.announceSummary(c)
}

// announceSummary computes the due summary block locally (§IV-B: every
// node builds Σ itself), records it as our position for the vote round,
// and broadcasts the vote. Safe to call repeatedly — re-announcement is
// the repair protocol for lost votes. A vote-withholding Byzantine
// member records its position (it must know the correct hash to follow
// the quorum's decision) but stays silent.
func (n *Node) announceSummary(c *chain.Chain) {
	local, err := c.BuildSummary()
	if err != nil {
		return
	}
	num := local.Header.Number
	marker := c.Marker() // marker before the shift; vote carries it for audit
	vote := wire.VotePayload{Number: num, Hash: local.Hash(), Marker: marker, Approve: true}

	n.mu.Lock()
	st := n.talliesFor(num)
	st.localHash = local.Hash()
	st.localSet = true
	silent := n.byzantine == attack.VoteWithholding
	n.mu.Unlock()

	if silent {
		// Votes may already have arrived before our position was set;
		// re-evaluate the tally without announcing anything.
		n.maybeApplySummary(num)
		return
	}
	if n.ep != nil {
		n.ep.Broadcast(wire.KindVote, wire.SealEnvelope(n.key, wire.KindVote, wire.EncodeVote(vote)))
	}
	n.recordVote(n.name, vote)
}

func (n *Node) talliesFor(num uint64) *voteState {
	st, ok := n.tallies[num]
	if !ok {
		st = &voteState{
			counts: make(map[codec.Hash]int),
			voted:  make(map[string]bool),
		}
		n.tallies[num] = st
	}
	return st
}

func (n *Node) handleVote(env wire.Envelope) {
	v, err := wire.DecodeVote(env.Body)
	if err != nil || !v.Approve {
		return
	}
	if !n.quorum.Contains(env.Sender) {
		return
	}
	n.recordVote(env.Sender, v)
	// A vote for a round beyond our head means we missed blocks: sync.
	if v.Number > n.Chain().Head().Number+1 {
		n.requestSync(env.Sender)
		return
	}
	// Answer announcements (never answers): repairs lost votes. Repair
	// votes themselves are counted above but not answered, so the repair
	// protocol cannot loop. A vote-withholding member never answers.
	if !v.Repair && n.byzantine != attack.VoteWithholding {
		n.answerVote(env.Sender, v.Number)
	}
}

// answerVote unicasts our own vote for round num back to peer, marked as
// a repair answer.
func (n *Node) answerVote(peer string, num uint64) {
	if n.ep == nil {
		return
	}
	n.mu.Lock()
	st := n.tallies[num]
	send := st != nil && st.localSet
	var local codec.Hash
	if send {
		local = st.localHash
	}
	n.mu.Unlock()
	if !send {
		return
	}
	vote := wire.VotePayload{
		Number: num, Hash: local, Marker: n.Chain().Marker(),
		Approve: true, Repair: true,
	}
	_ = n.ep.Send(peer, wire.KindVote, wire.SealEnvelope(n.key, wire.KindVote, wire.EncodeVote(vote)))
}

func (n *Node) recordVote(sender string, v wire.VotePayload) {
	n.mu.Lock()
	st := n.talliesFor(v.Number)
	if st.voted[sender] {
		n.mu.Unlock()
		return
	}
	st.voted[sender] = true
	st.counts[v.Hash]++
	n.mu.Unlock()
	n.maybeApplySummary(v.Number)
}

// maybeApplySummary appends the locally built summary once a quorum
// majority voted for the same hash. A majority on a different hash means
// this node's state diverged: it marks itself forked (§IV-B: "In case of
// a failure, the hash of the blocks are different, which would result in
// a fork").
func (n *Node) maybeApplySummary(num uint64) {
	n.mu.Lock()
	st := n.tallies[num]
	if st == nil || st.applied || !st.localSet {
		n.mu.Unlock()
		return
	}
	threshold := n.quorum.Threshold()
	var winner codec.Hash
	decided := false
	for h, count := range st.counts {
		if count >= threshold {
			winner, decided = h, true
			break
		}
	}
	if !decided {
		n.mu.Unlock()
		return
	}
	st.applied = true
	local := st.localHash
	n.mu.Unlock()

	if winner != local {
		n.mu.Lock()
		n.forked = true
		n.mu.Unlock()
		return
	}
	c := n.Chain()
	summary, err := c.BuildSummary()
	if err != nil {
		return // already appended via another path
	}
	if summary.Hash() != winner {
		n.mu.Lock()
		n.forked = true
		n.mu.Unlock()
		return
	}
	_ = c.AppendBlock(summary)
	// Clean up old tallies to bound memory.
	n.mu.Lock()
	for old := range n.tallies {
		if old+16 < num {
			delete(n.tallies, old)
		}
	}
	n.mu.Unlock()
}

func (n *Node) handleStatusReq(env wire.Envelope) {
	req := codec.NewDecoder(env.Body)
	reqID := req.Uint64()
	if req.Finish() != nil {
		return
	}
	c := n.Chain()
	head := c.Head()
	n.mu.Lock()
	forked := n.forked
	n.mu.Unlock()
	resp := wire.StatusPayload{
		ReqID:      reqID,
		HeadNumber: head.Number,
		HeadHash:   head.Hash(),
		Marker:     c.Marker(),
		Forked:     forked,
	}
	if n.ep != nil {
		_ = n.ep.Send(env.Sender, wire.KindStatusResp, wire.SealEnvelope(n.key, wire.KindStatusResp, wire.EncodeStatus(resp)))
	}
}

func (n *Node) handleLookupReq(env wire.Envelope) {
	req, err := wire.DecodeLookupReq(env.Body)
	if err != nil || n.ep == nil {
		return
	}
	resp := n.buildLookupResp(req)
	_ = n.ep.Send(env.Sender, wire.KindLookupResp, wire.SealEnvelope(n.key, wire.KindLookupResp, wire.EncodeLookupResp(resp)))
}

func (n *Node) buildLookupResp(req wire.LookupReqPayload) wire.LookupRespPayload {
	resp := wire.LookupRespPayload{ReqID: req.ReqID}
	c := n.Chain()
	ref := block.Ref{Block: req.RefBlock, Entry: req.RefEntry}
	entry, loc, ok := c.Lookup(ref)
	if !ok {
		return resp
	}
	holder, ok := c.Block(loc.Block)
	if !ok {
		return resp
	}
	proof, err := holder.EntryProof(loc.Index)
	if err != nil {
		return resp
	}
	resp.Found = true
	resp.Entry = entry.Encode()
	resp.Carried = loc.Carried
	resp.HolderBlock = holder.Header.Encode()
	resp.LeafIndex = uint32(proof.Index)
	resp.LeafCount = uint32(proof.LeafCount)
	for _, sib := range proof.Siblings {
		resp.ProofSibs = append(resp.ProofSibs, append([]byte(nil), sib[:]...))
	}
	if loc.Carried {
		resp.LeafBytes = holder.Carried[loc.Index].Encode()
	} else {
		resp.LeafBytes = holder.Entries[loc.Index].Encode()
	}
	return resp
}

// CorruptForTest mutates the node's deletion-mark state so its next
// summary diverges — used by the fork-detection tests (E11) to model a
// faulty or malicious node. It marks the given ref deleted without any
// authorization.
func (n *Node) CorruptForTest(ref block.Ref) {
	n.Chain().InjectMarkForTest(ref)
}
