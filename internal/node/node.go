// Package node implements anchor nodes: the quorum members that "manage
// the full copy of the blockchain" (§IV-A), extend their consensus engine
// with the summary-block behaviour (§IV-B), vote on Genesis-marker shifts
// (§IV-C), and serve the current status quo to clients so isolated
// participants can recover (§V-B.4).
package node

import (
	"errors"
	"fmt"
	"sync"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/wire"
)

// Config assembles an anchor node.
type Config struct {
	// Key is the node's network identity; it must be registered in the
	// chain registry (the quorum's "master signature" role, §IV-D.1).
	Key *identity.KeyPair
	// Chain is the chain configuration. Every quorum member must use
	// identical parameters, or summaries diverge.
	Chain chain.Config
	// Engine seals and verifies normal blocks.
	Engine consensus.Engine
	// Quorum is the anchor-node set voting on marker shifts.
	Quorum *consensus.Quorum
	// Network connects the node to its peers.
	Network *netsim.Network
}

// ErrSummaryPending is returned by Propose while the quorum vote for the
// due summary block is still incomplete (e.g. votes were lost on a lossy
// network); the node re-announces its vote and the caller retries once
// the network settles.
var ErrSummaryPending = errors.New("node: summary vote pending")

// voteState tracks the quorum votes for one pending summary block.
type voteState struct {
	counts    map[codec.Hash]int
	voted     map[string]bool
	localHash codec.Hash
	localSet  bool
	applied   bool
}

// Node is one anchor node.
type Node struct {
	mu       sync.Mutex
	name     string
	key      *identity.KeyPair
	chain    *chain.Chain // guarded by mu for the rare status-quo adoption swap
	chainCfg chain.Config // engine-wired config, reused by Restore on adoption
	engine   consensus.Engine
	quorum   *consensus.Quorum
	ep       *netsim.Endpoint
	pool     *mempool.Pool // pending entries awaiting the next proposal
	tallies  map[uint64]*voteState
	forked   bool
}

// New creates an anchor node and joins it to the network.
func New(cfg Config) (*Node, error) {
	if cfg.Key == nil {
		return nil, errors.New("node: missing key")
	}
	if cfg.Engine == nil {
		cfg.Engine = consensus.NoOp{}
	}
	if cfg.Quorum == nil {
		q, err := consensus.NewQuorum([]string{cfg.Key.Name()})
		if err != nil {
			return nil, err
		}
		cfg.Quorum = q
	}
	chainCfg := cfg.Chain
	consensus.Configure(&chainCfg, cfg.Engine)
	c, err := chain.New(chainCfg)
	if err != nil {
		return nil, err
	}
	n := &Node{
		name:     cfg.Key.Name(),
		key:      cfg.Key,
		chain:    c,
		chainCfg: chainCfg,
		engine:   cfg.Engine,
		quorum:   cfg.Quorum,
		pool:     mempool.NewPool(),
		tallies:  make(map[uint64]*voteState),
	}
	if cfg.Network != nil {
		ep, err := cfg.Network.Join(n.name, n.handle)
		if err != nil {
			return nil, err
		}
		n.ep = ep
	}
	return n, nil
}

// Name returns the node's identity name.
func (n *Node) Name() string { return n.name }

// Chain exposes the node's chain (read-mostly; concurrent-safe). The
// pointer may change when the node adopts a new status quo after falling
// behind the quorum's Genesis marker.
func (n *Node) Chain() *chain.Chain {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.chain
}

// Forked reports whether the node detected divergence from the quorum.
func (n *Node) Forked() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.forked
}

// MempoolSize returns the number of pending entries.
func (n *Node) MempoolSize() int {
	return n.pool.Len()
}

// handle dispatches incoming network messages. It runs on the endpoint's
// delivery goroutine.
func (n *Node) handle(msg netsim.Message) {
	env, err := wire.OpenEnvelope(n.Chain().Registry(), msg.Payload)
	if err != nil {
		return // unauthenticated message: drop
	}
	switch env.Kind {
	case wire.KindEntry:
		n.handleEntry(env)
	case wire.KindBlock:
		n.handleBlock(env)
	case wire.KindVote:
		n.handleVote(env)
	case wire.KindStatusReq:
		n.handleStatusReq(env)
	case wire.KindLookupReq:
		n.handleLookupReq(env)
	case wire.KindSyncReq:
		n.handleSyncReq(env)
	case wire.KindSyncResp:
		n.handleSyncResp(env)
	}
}

func (n *Node) handleEntry(env wire.Envelope) {
	e, err := block.DecodeEntry(env.Body)
	if err != nil {
		return
	}
	n.AddToMempool(e)
}

// AddToMempool queues an entry for inclusion in the next proposed block.
// Duplicates (by content hash) are ignored by the pending pool. The
// shape and signature screen runs through the chain's verification pool,
// so the later proposal-time validation of the same entry resolves from
// the verified-signature cache.
func (n *Node) AddToMempool(e *block.Entry) {
	c := n.Chain()
	if err := c.Verifier().Entries(c.Registry(), []*block.Entry{e}); err != nil {
		return
	}
	n.pool.Add(e)
}

// Propose builds, seals, appends, and gossips a block holding the
// pending mempool entries, then initiates the summary vote when the next
// slot is a summary slot. The test harness and the demo CLI drive this
// explicitly so simulations stay deterministic.
func (n *Node) Propose() (*block.Block, error) {
	c := n.Chain()
	if c.NextIsSummary() {
		// The summary vote has not completed (lost votes). Re-announce
		// ours; peers answer with theirs, repairing the tally.
		n.afterAppend()
		return nil, ErrSummaryPending
	}
	entries := n.pool.Take()
	valid := entries[:0]
	for _, e := range entries {
		// Drop entries that no longer validate (e.g. a dependency became
		// marked since submission).
		if err := c.ValidateEntries([]*block.Entry{e}); err == nil {
			valid = append(valid, e)
		}
	}
	b, err := c.BuildNormal(valid)
	if err != nil {
		return nil, err
	}
	if err := n.engine.Seal(b); err != nil {
		return nil, fmt.Errorf("node: seal: %w", err)
	}
	if err := c.AppendBlock(b); err != nil {
		return nil, err
	}
	if n.ep != nil {
		n.ep.Broadcast(wire.KindBlock, wire.SealEnvelope(n.key, wire.KindBlock, b.Encode()))
	}
	n.afterAppend()
	return b, nil
}

func (n *Node) handleBlock(env wire.Envelope) {
	b, err := block.DecodeBlock(env.Body)
	if err != nil {
		return
	}
	c := n.Chain()
	if err := c.AppendBlock(b); err != nil {
		// A gap means we fell behind (e.g. a healed partition): ask the
		// sender for the missing suffix (§V-B.4 recovery via anchors).
		if errors.Is(err, chain.ErrNotNext) && b.Header.Number > c.Head().Number+1 {
			n.requestSync(env.Sender)
		}
		// Otherwise: stale or conflicting block. A summary mismatch means
		// WE may be the forked party only if the majority agrees with the
		// sender; that is decided by the vote, not here.
		return
	}
	n.removeFromMempool(b.Entries)
	n.afterAppend()
}

// requestSync asks peer for everything after our head.
func (n *Node) requestSync(peer string) {
	if n.ep == nil {
		return
	}
	body := wire.EncodeSyncReq(wire.SyncReqPayload{HeadNumber: n.Chain().Head().Number})
	_ = n.ep.Send(peer, wire.KindSyncReq, wire.SealEnvelope(n.key, wire.KindSyncReq, body))
}

func (n *Node) handleSyncReq(env wire.Envelope) {
	if n.ep == nil {
		return
	}
	req, err := wire.DecodeSyncReq(env.Body)
	if err != nil {
		return
	}
	c := n.Chain()
	resp := wire.SyncRespPayload{}
	from := req.HeadNumber + 1
	if from < c.Marker() {
		// The requester's continuation point was already truncated away;
		// it must adopt the full live chain as its new status quo (the
		// marker block "is a trusted anchor … already approved by the
		// anchor nodes", §IV-C).
		resp.Replace = true
		from = c.Marker()
	}
	for b := range c.BlocksSeq() {
		if b.Header.Number >= from {
			resp.Blocks = append(resp.Blocks, b.Encode())
		}
	}
	if len(resp.Blocks) == 0 {
		return
	}
	_ = n.ep.Send(env.Sender, wire.KindSyncResp,
		wire.SealEnvelope(n.key, wire.KindSyncResp, wire.EncodeSyncResp(resp)))
}

func (n *Node) handleSyncResp(env wire.Envelope) {
	// Only quorum members are trusted for catch-up data.
	if !n.quorum.Contains(env.Sender) {
		return
	}
	resp, err := wire.DecodeSyncResp(env.Body)
	if err != nil || len(resp.Blocks) == 0 {
		return
	}
	blocks := make([]*block.Block, 0, len(resp.Blocks))
	for _, raw := range resp.Blocks {
		b, err := block.DecodeBlock(raw)
		if err != nil {
			return
		}
		blocks = append(blocks, b)
	}
	if resp.Replace {
		n.adoptStatusQuo(blocks)
		return
	}
	c := n.Chain()
	for _, b := range blocks {
		if err := c.AppendBlock(b); err != nil {
			return // stale or diverged; a later gossip round retries
		}
	}
	n.afterAppend()
}

// adoptStatusQuo replaces the local chain with the quorum's live suffix.
// The restored chain is structurally re-validated by Restore; adoption
// only happens when it is strictly ahead of the local head. (A hardened
// deployment would additionally require quorum signatures over the
// status quo; the simulator trusts authenticated quorum members.)
func (n *Node) adoptStatusQuo(blocks []*block.Block) {
	restored, err := chain.Restore(n.chainCfg, blocks)
	if err != nil {
		return
	}
	if err := restored.VerifyIntegrity(); err != nil {
		return
	}
	n.mu.Lock()
	if restored.Head().Number <= n.chain.Head().Number {
		n.mu.Unlock()
		return
	}
	n.chain = restored
	n.tallies = make(map[uint64]*voteState)
	n.forked = false
	n.mu.Unlock()
}

// removeFromMempool drops entries that were included in a block another
// node proposed.
func (n *Node) removeFromMempool(included []*block.Entry) {
	n.pool.Remove(included)
}

// afterAppend starts the summary-vote round if a summary slot is due.
func (n *Node) afterAppend() {
	c := n.Chain()
	if !c.NextIsSummary() {
		return
	}
	local, err := c.BuildSummary()
	if err != nil {
		return
	}
	num := local.Header.Number
	marker := c.Marker() // marker before the shift; vote carries it for audit
	vote := wire.VotePayload{Number: num, Hash: local.Hash(), Marker: marker, Approve: true}

	n.mu.Lock()
	st := n.talliesFor(num)
	st.localHash = local.Hash()
	st.localSet = true
	n.mu.Unlock()

	if n.ep != nil {
		n.ep.Broadcast(wire.KindVote, wire.SealEnvelope(n.key, wire.KindVote, wire.EncodeVote(vote)))
	}
	n.recordVote(n.name, vote)
}

func (n *Node) talliesFor(num uint64) *voteState {
	st, ok := n.tallies[num]
	if !ok {
		st = &voteState{
			counts: make(map[codec.Hash]int),
			voted:  make(map[string]bool),
		}
		n.tallies[num] = st
	}
	return st
}

func (n *Node) handleVote(env wire.Envelope) {
	v, err := wire.DecodeVote(env.Body)
	if err != nil || !v.Approve {
		return
	}
	if !n.quorum.Contains(env.Sender) {
		return
	}
	n.recordVote(env.Sender, v)
	// A vote for a round beyond our head means we missed blocks: sync.
	if v.Number > n.Chain().Head().Number+1 {
		n.requestSync(env.Sender)
		return
	}
	// Answer announcements (never answers): repairs lost votes. Repair
	// votes themselves are counted above but not answered, so the repair
	// protocol cannot loop.
	if !v.Repair {
		n.answerVote(env.Sender, v.Number)
	}
}

// answerVote unicasts our own vote for round num back to peer, marked as
// a repair answer.
func (n *Node) answerVote(peer string, num uint64) {
	if n.ep == nil {
		return
	}
	n.mu.Lock()
	st := n.tallies[num]
	send := st != nil && st.localSet
	var local codec.Hash
	if send {
		local = st.localHash
	}
	n.mu.Unlock()
	if !send {
		return
	}
	vote := wire.VotePayload{
		Number: num, Hash: local, Marker: n.Chain().Marker(),
		Approve: true, Repair: true,
	}
	_ = n.ep.Send(peer, wire.KindVote, wire.SealEnvelope(n.key, wire.KindVote, wire.EncodeVote(vote)))
}

func (n *Node) recordVote(sender string, v wire.VotePayload) {
	n.mu.Lock()
	st := n.talliesFor(v.Number)
	if st.voted[sender] {
		n.mu.Unlock()
		return
	}
	st.voted[sender] = true
	st.counts[v.Hash]++
	n.mu.Unlock()
	n.maybeApplySummary(v.Number)
}

// maybeApplySummary appends the locally built summary once a quorum
// majority voted for the same hash. A majority on a different hash means
// this node's state diverged: it marks itself forked (§IV-B: "In case of
// a failure, the hash of the blocks are different, which would result in
// a fork").
func (n *Node) maybeApplySummary(num uint64) {
	n.mu.Lock()
	st := n.tallies[num]
	if st == nil || st.applied || !st.localSet {
		n.mu.Unlock()
		return
	}
	threshold := n.quorum.Threshold()
	var winner codec.Hash
	decided := false
	for h, count := range st.counts {
		if count >= threshold {
			winner, decided = h, true
			break
		}
	}
	if !decided {
		n.mu.Unlock()
		return
	}
	st.applied = true
	local := st.localHash
	n.mu.Unlock()

	if winner != local {
		n.mu.Lock()
		n.forked = true
		n.mu.Unlock()
		return
	}
	c := n.Chain()
	summary, err := c.BuildSummary()
	if err != nil {
		return // already appended via another path
	}
	if summary.Hash() != winner {
		n.mu.Lock()
		n.forked = true
		n.mu.Unlock()
		return
	}
	_ = c.AppendBlock(summary)
	// Clean up old tallies to bound memory.
	n.mu.Lock()
	for old := range n.tallies {
		if old+16 < num {
			delete(n.tallies, old)
		}
	}
	n.mu.Unlock()
}

func (n *Node) handleStatusReq(env wire.Envelope) {
	req := codec.NewDecoder(env.Body)
	reqID := req.Uint64()
	if req.Finish() != nil {
		return
	}
	c := n.Chain()
	head := c.Head()
	n.mu.Lock()
	forked := n.forked
	n.mu.Unlock()
	resp := wire.StatusPayload{
		ReqID:      reqID,
		HeadNumber: head.Number,
		HeadHash:   head.Hash(),
		Marker:     c.Marker(),
		Forked:     forked,
	}
	if n.ep != nil {
		_ = n.ep.Send(env.Sender, wire.KindStatusResp, wire.SealEnvelope(n.key, wire.KindStatusResp, wire.EncodeStatus(resp)))
	}
}

func (n *Node) handleLookupReq(env wire.Envelope) {
	req, err := wire.DecodeLookupReq(env.Body)
	if err != nil || n.ep == nil {
		return
	}
	resp := n.buildLookupResp(req)
	_ = n.ep.Send(env.Sender, wire.KindLookupResp, wire.SealEnvelope(n.key, wire.KindLookupResp, wire.EncodeLookupResp(resp)))
}

func (n *Node) buildLookupResp(req wire.LookupReqPayload) wire.LookupRespPayload {
	resp := wire.LookupRespPayload{ReqID: req.ReqID}
	c := n.Chain()
	ref := block.Ref{Block: req.RefBlock, Entry: req.RefEntry}
	entry, loc, ok := c.Lookup(ref)
	if !ok {
		return resp
	}
	holder, ok := c.Block(loc.Block)
	if !ok {
		return resp
	}
	proof, err := holder.EntryProof(loc.Index)
	if err != nil {
		return resp
	}
	resp.Found = true
	resp.Entry = entry.Encode()
	resp.Carried = loc.Carried
	resp.HolderBlock = holder.Header.Encode()
	resp.LeafIndex = uint32(proof.Index)
	resp.LeafCount = uint32(proof.LeafCount)
	for _, sib := range proof.Siblings {
		resp.ProofSibs = append(resp.ProofSibs, append([]byte(nil), sib[:]...))
	}
	if loc.Carried {
		resp.LeafBytes = holder.Carried[loc.Index].Encode()
	} else {
		resp.LeafBytes = holder.Entries[loc.Index].Encode()
	}
	return resp
}

// SubmitLocal queues an entry as if received from a client and gossips
// it to the peer anchors.
func (n *Node) SubmitLocal(e *block.Entry) {
	n.AddToMempool(e)
	if n.ep != nil {
		n.ep.Broadcast(wire.KindEntry, wire.SealEnvelope(n.key, wire.KindEntry, e.Encode()))
	}
}

// CorruptForTest mutates the node's deletion-mark state so its next
// summary diverges — used by the fork-detection tests (E11) to model a
// faulty or malicious node. It marks the given ref deleted without any
// authorization.
func (n *Node) CorruptForTest(ref block.Ref) {
	n.Chain().InjectMarkForTest(ref)
}
