package node

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store/segment"
	"github.com/seldel/seldel/internal/wire"
)

// TestRejoinRejectsResurrectionOffers is the resurrection drill: a
// follower witnesses a quorum deletion (its store records the manifest
// entry), loses every block file in a disk incident that spares the
// DELETIONS log, and rejoins from scratch. Its own manifest must arm
// the resurrection floor: sync and snapshot offers carrying blocks from
// the deleted range are rejected even though the fresh chain would
// happily append them, while a post-deletion status quo is adopted.
func TestRejoinRejectsResurrectionOffers(t *testing.T) {
	cl := newCluster(t, 3, "alpha", "user")
	dir := t.TempDir()
	st, err := segment.Open(dir, segment.Options{})
	if err != nil {
		t.Fatal(err)
	}

	name := "anchor-follower"
	kp := identity.Deterministic(name, "cluster-test")
	if err := cl.registry.RegisterKey(kp, identity.RoleMaster); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Key: kp,
		Chain: chain.Config{
			SequenceLength: 3,
			MaxSequences:   2,
			Shrink:         chain.ShrinkAllButNewest,
			Registry:       cl.registry,
			Clock:          simclock.NewLogical(0),
		},
		Quorum:  cl.nodes[0].quorum,
		Network: cl.net,
		Store:   st,
	}
	follower, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Seed the victim and capture the pre-deletion live chain: this is
	// the "resurrection payload" a stale or malicious peer could offer
	// after the deletion.
	user := cl.keys["user"]
	cl.nodes[0].SubmitLocal(block.NewData("user", []byte("erase me")).Sign(user))
	cl.net.Flush()
	b, err := cl.nodes[0].Propose()
	if err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	victim := block.Ref{Block: b.Header.Number, Entry: 0}
	var stale [][]byte
	staleHead := uint64(0)
	for blk := range cl.nodes[0].Chain().BlocksSeq() {
		stale = append(stale, blk.Encode())
		staleHead = blk.Header.Number
	}

	// The quorum approves the deletion and truncates past the victim.
	cl.nodes[0].SubmitLocal(block.NewDeletion("user", victim).Sign(user))
	cl.net.Flush()
	if _, err := cl.nodes[0].Propose(); err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	cl.driveRounds(t, 0, 8, "truncate")
	if cl.nodes[0].Chain().Marker() <= victim.Block {
		t.Fatal("marker never passed the victim; scenario is vacuous")
	}
	if err := follower.Chain().CompactWait(context.Background()); err != nil {
		t.Fatal(err)
	}
	floor := follower.Chain().ResurrectionFloor()
	if floor == 0 || floor <= victim.Block {
		t.Fatalf("follower resurrection floor %d does not cover victim block %d", floor, victim.Block)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The incident: every block file, the marker file, and the snapshot
	// are lost; only the DELETIONS audit log survives.
	for _, pattern := range []string{"seg-*.seg", "MANIFEST", "SNAPSHOT"} {
		matches, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil {
				t.Fatal(err)
			}
		}
	}

	st2, err := segment.Open(dir, segment.Options{})
	if err != nil {
		t.Fatalf("reopening wiped store: %v", err)
	}
	defer st2.Close()
	cfg.Store = st2
	// A fresh logical clock: the first life advanced the shared one, and
	// a from-scratch rejoin must mint the same deterministic genesis the
	// cluster started from.
	cfg.Chain.Clock = simclock.NewLogical(0)
	rejoined, err := New(cfg)
	if err != nil {
		t.Fatalf("rejoining with wiped store: %v", err)
	}
	defer rejoined.Close()
	if got := rejoined.Chain().ResurrectionFloor(); got != floor {
		t.Fatalf("rejoined floor %d, want %d (seeded from the surviving DELETIONS log)", got, floor)
	}

	// The poison would take absent the guard: the stale suffix links
	// onto the fresh chain's deterministic genesis.
	first, err := block.DecodeBlock(stale[1])
	if err != nil {
		t.Fatal(err)
	}
	if first.Header.PrevHash != rejoined.Chain().Blocks()[0].Hash() {
		t.Fatal("stale blocks do not link onto the fresh genesis; rejection would be vacuous")
	}

	// Poisoned incremental sync: blocks 1..head, all below the floor.
	rejoined.handleSyncResp(wire.Envelope{
		Sender: cl.nodes[0].Name(),
		Body:   wire.EncodeSyncResp(wire.SyncRespPayload{Blocks: stale[1:]}),
	})
	if head := rejoined.Chain().Head().Number; head != 0 {
		t.Fatalf("rejoined node appended resurrected sync blocks (head %d)", head)
	}
	if resolvable(rejoined, victim) {
		t.Fatal("victim resurrected via sync offer")
	}

	// Poisoned snapshot adoption: pre-deletion status quo, marker 0.
	rejoined.handleSnapshotResp(wire.Envelope{
		Sender: cl.nodes[0].Name(),
		Body: wire.EncodeSnapshot(wire.SnapshotPayload{
			Marker: 0,
			Head:   staleHead,
			Blocks: stale,
		}),
	})
	if head := rejoined.Chain().Head().Number; head != 0 {
		t.Fatalf("rejoined node adopted a resurrected snapshot (head %d)", head)
	}
	if resolvable(rejoined, victim) {
		t.Fatal("victim resurrected via snapshot offer")
	}

	// The genuine status quo — anchored at or above the floor — is
	// still welcome: ask a live quorum member for catch-up.
	rejoined.requestSync(cl.nodes[0].Name())
	cl.net.Flush()
	if rejoined.Chain().HeadHash() != cl.nodes[0].Chain().HeadHash() {
		t.Fatalf("rejoined node did not adopt the legitimate status quo: head %d vs %d",
			rejoined.Chain().Head().Number, cl.nodes[0].Chain().Head().Number)
	}
	if rejoined.Chain().Marker() < floor {
		t.Fatalf("adopted marker %d below the floor %d", rejoined.Chain().Marker(), floor)
	}
	if resolvable(rejoined, victim) {
		t.Fatal("victim resolvable after legitimate adoption")
	}
	if got := rejoined.Chain().ResurrectionFloor(); got < floor {
		t.Fatalf("floor dropped to %d after adoption, want >= %d", got, floor)
	}
}

// TestSyncOffersCarryManifestHead checks the audit side of sync: serving
// nodes attach their deletion-manifest head to catch-up payloads.
func TestSyncOffersCarryManifestHead(t *testing.T) {
	cl := newCluster(t, 3, "alpha", "user")
	user := cl.keys["user"]
	cl.nodes[0].SubmitLocal(block.NewData("user", []byte("x")).Sign(user))
	cl.net.Flush()
	b, err := cl.nodes[0].Propose()
	if err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	cl.nodes[0].SubmitLocal(block.NewDeletion("user", block.Ref{Block: b.Header.Number, Entry: 0}).Sign(user))
	cl.net.Flush()
	if _, err := cl.nodes[0].Propose(); err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	cl.driveRounds(t, 0, 8, "truncate")

	c := cl.nodes[0].Chain()
	head, ok := c.TombstoneHead()
	if !ok {
		t.Fatal("no tombstone record after truncation")
	}
	var p wire.SnapshotPayload
	cl.nodes[0].sendSnapshot("nobody", c) // exercises the builder; send fails silently
	if hd, ok := c.TombstoneHead(); !ok || hd.NewMarker != c.Marker() {
		t.Fatalf("manifest head marker %d, chain marker %d", hd.NewMarker, c.Marker())
	}
	// Round-trip the payloads to prove the fields survive the wire.
	p = wire.SnapshotPayload{Marker: c.Marker(), Head: c.Head().Number, ManifestSeq: head.Seq, ManifestMarker: head.NewMarker}
	for blk := range c.BlocksSeq() {
		p.Blocks = append(p.Blocks, blk.Encode())
	}
	dec, err := wire.DecodeSnapshot(wire.EncodeSnapshot(p))
	if err != nil {
		t.Fatal(err)
	}
	if dec.ManifestSeq != head.Seq || dec.ManifestMarker != head.NewMarker {
		t.Fatalf("snapshot manifest head lost in transit: %+v", dec)
	}
	sr := wire.SyncRespPayload{Blocks: p.Blocks, ManifestSeq: head.Seq, ManifestMarker: head.NewMarker}
	decSync, err := wire.DecodeSyncResp(wire.EncodeSyncResp(sr))
	if err != nil {
		t.Fatal(err)
	}
	if decSync.ManifestSeq != head.Seq || decSync.ManifestMarker != head.NewMarker {
		t.Fatalf("sync manifest head lost in transit: %+v", decSync)
	}
}

// TestProposeFillerThrottle covers the Config.FillerInterval rate
// limit: an idle node seals one filler per interval instead of minting
// empty blocks as fast as Propose is called.
func TestProposeFillerThrottle(t *testing.T) {
	cl := newCluster(t, 1, "alpha", "user")
	nd := cl.nodes[0]
	nd.fillerEvery = time.Hour // retrofit: newCluster builds without an interval

	if _, err := nd.Propose(); err != nil {
		t.Fatalf("first filler: %v", err)
	}
	if _, err := nd.Propose(); !errors.Is(err, ErrFillerThrottled) {
		t.Fatalf("second filler not throttled: %v", err)
	}
	// Entries are never throttled: a real submission still seals.
	nd.SubmitLocal(block.NewData("user", []byte("work")).Sign(cl.keys["user"]))
	cl.net.Flush()
	b, err := nd.Propose()
	if err != nil {
		t.Fatalf("entry proposal throttled: %v", err)
	}
	if len(b.Entries) == 0 {
		t.Fatal("entry proposal sealed an empty block")
	}
	// Elapsed interval: the filler flows again.
	nd.mu.Lock()
	nd.lastFiller = time.Now().Add(-2 * time.Hour)
	nd.mu.Unlock()
	if _, err := nd.Propose(); err != nil {
		t.Fatalf("filler after interval: %v", err)
	}
}

// TestFillerIntervalConfig checks the interval reaches the node from
// Config (separately from the retrofit above).
func TestFillerIntervalConfig(t *testing.T) {
	reg := identity.NewRegistry()
	kp := identity.Deterministic("solo", "filler-test")
	if err := reg.RegisterKey(kp, identity.RoleMaster); err != nil {
		t.Fatal(err)
	}
	nd, err := New(Config{
		Key: kp,
		Chain: chain.Config{
			SequenceLength: 3,
			Registry:       reg,
			Clock:          simclock.NewLogical(0),
		},
		FillerInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if _, err := nd.Propose(); err != nil {
		t.Fatalf("first filler: %v", err)
	}
	if _, err := nd.Propose(); !errors.Is(err, ErrFillerThrottled) {
		t.Fatalf("want ErrFillerThrottled, got %v", err)
	}
	if nd.fillerEvery != time.Hour {
		t.Fatalf("fillerEvery = %v, want 1h", nd.fillerEvery)
	}
}
