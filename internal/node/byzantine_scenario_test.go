package node

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/seldel/seldel/internal/attack"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store/segment"
	"github.com/seldel/seldel/internal/wire"
)

// Byzantine drills beyond silent members: equivocating proposers that
// split the quorum's view, snapshot forgers replaying a pre-deletion
// status quo, and the node-side defenses (vote-evidence flagging, the
// resurrection floor, offer backoff) that contain them.

func equivocatorNames(cl *cluster, idx ...int) map[string]bool {
	out := make(map[string]bool, len(idx))
	for _, i := range idx {
		out[cl.nodes[i].Name()] = true
	}
	return out
}

func assertFlagged(t *testing.T, nd *Node, want map[string]bool) {
	t.Helper()
	got := nd.Equivocators()
	if len(got) != len(want) {
		t.Fatalf("%s flagged %v, want exactly %v", nd.Name(), got, want)
	}
	for _, name := range got {
		if !want[name] {
			t.Fatalf("%s flagged honest member %s", nd.Name(), name)
		}
	}
}

func TestEquivocationAtToleranceBound(t *testing.T) {
	// 5-member quorum, threshold 3: two equivocators tell half their
	// peers one summary hash and the other half its complement. The
	// three honest votes alone reach the threshold, relay-on-disagreement
	// spreads the conflicting signed envelopes, and every honest node
	// ends holding proof against exactly the two liars — who, having
	// computed the honest summary for their own chain, still converge.
	cl := newClusterWithByzantine(t, 5,
		map[int]attack.Behavior{3: attack.Equivocation, 4: attack.Equivocation}, "alpha")
	cl.driveRounds(t, 0, 8, "equivocating")
	if cl.nodes[0].Chain().Marker() == 0 {
		t.Fatal("marker never shifted with equivocators at the tolerance bound")
	}
	if err := cl.headsAndMarkersAgree(); err != nil {
		t.Fatalf("cluster diverged under equivocation: %v", err)
	}
	want := equivocatorNames(cl, 3, 4)
	for _, nd := range cl.nodes[:3] {
		if nd.Forked() {
			t.Errorf("honest %s reports forked", nd.Name())
		}
		assertFlagged(t, nd, want)
	}
}

func TestEquivocationBeyondToleranceBound(t *testing.T) {
	// 3 of 5 members equivocate. Safety must hold unconditionally: no
	// honest node forks, no honest node flags an honest member, and the
	// honest chains stay identical. Liveness is then lost for the honest
	// remainder alone: with the equivocators partitioned away (or their
	// votes discarded as flagged), two honest votes can never reach the
	// threshold of three.
	cl := newClusterWithByzantine(t, 5,
		map[int]attack.Behavior{2: attack.Equivocation, 3: attack.Equivocation, 4: attack.Equivocation}, "alpha")
	alpha := cl.keys["alpha"]
	for i := 0; i < 6; i++ {
		cl.nodes[0].SubmitLocal(block.NewData("alpha", []byte(fmt.Sprintf("b%d", i))).Sign(alpha))
		cl.net.Flush()
		if _, err := cl.nodes[0].Propose(); err != nil && !errors.Is(err, ErrSummaryPending) {
			t.Fatal(err)
		}
		cl.net.Flush()
	}
	for _, nd := range cl.nodes[:2] {
		if nd.Forked() {
			t.Errorf("honest %s forked under majority equivocation", nd.Name())
		}
		for _, flagged := range nd.Equivocators() {
			if flagged == cl.nodes[0].Name() || flagged == cl.nodes[1].Name() {
				t.Errorf("honest %s flagged honest member %s", nd.Name(), flagged)
			}
		}
	}
	if cl.nodes[0].Chain().HeadHash() != cl.nodes[1].Chain().HeadHash() {
		t.Error("honest nodes diverged from each other")
	}

	// Cut the equivocators off: the honest remainder stalls at the next
	// summary with ErrSummaryPending, forever — liveness loss, by design.
	cl.net.Partition([]string{cl.nodes[0].Name(), cl.nodes[1].Name()})
	marker := cl.nodes[0].Chain().Marker()
	var lastErr error
	for i := 0; i < 8 && lastErr == nil; i++ {
		cl.nodes[0].SubmitLocal(block.NewData("alpha", []byte(fmt.Sprintf("stall-%d", i))).Sign(alpha))
		cl.net.Flush()
		_, lastErr = cl.nodes[0].Propose()
		cl.net.Flush()
	}
	if !errors.Is(lastErr, ErrSummaryPending) {
		t.Fatalf("honest minority: Propose = %v, want ErrSummaryPending", lastErr)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.nodes[0].Propose(); !errors.Is(err, ErrSummaryPending) {
			t.Fatalf("summary passed without an honest majority: %v", err)
		}
		cl.net.Flush()
	}
	if cl.nodes[0].Chain().Marker() != marker {
		t.Error("marker shifted without an honest majority")
	}
}

func TestForgedSnapshotRejectedByRejoiningReplica(t *testing.T) {
	// A quorum member with the ForgedSnapshot behaviour freezes the
	// first snapshot offer it ever builds and replays it (re-signed,
	// fresh offer ID) forever. A replica that witnessed a later deletion
	// and rejoins from a wiped store must reject the stale offer on its
	// own resurrection floor — the forger's signature is genuine, so the
	// floor is the only defense — and then adopt an honest peer's offer.
	cl := newClusterWithByzantine(t, 3, map[int]attack.Behavior{1: attack.ForgedSnapshot}, "alpha", "user")
	forger := cl.nodes[1]
	user := cl.keys["user"]

	dir := t.TempDir()
	st, err := segment.Open(dir, segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	name := "anchor-replica"
	kp := identity.Deterministic(name, "cluster-test")
	if err := cl.registry.RegisterKey(kp, identity.RoleMaster); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Key: kp,
		Chain: chain.Config{
			SequenceLength: 3,
			MaxSequences:   2,
			Shrink:         chain.ShrinkAllButNewest,
			Registry:       cl.registry,
			Clock:          simclock.NewLogical(0),
		},
		Quorum:  cl.nodes[0].quorum,
		Network: cl.net,
		Store:   st,
	}
	replica, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Age the chain past its first merge, then freeze the forger: its
	// next snapshot build — here provoked by an out-of-window sync
	// request — is the offer it will replay for the rest of its life.
	cl.driveRounds(t, 0, 6, "age")
	if forger.Chain().Marker() == 0 {
		t.Fatal("no marker shift before the freeze; drill is vacuous")
	}
	frozenMarker := forger.Chain().Marker()
	forger.sendSnapshot("nobody", forger.Chain())
	forger.mu.Lock()
	frozen := forger.frozenOfferSet
	forger.mu.Unlock()
	if !frozen {
		t.Fatal("forger did not freeze its first offer")
	}

	// Now the deletion the frozen offer would resurrect.
	cl.nodes[0].SubmitLocal(block.NewData("user", []byte("must stay dead")).Sign(user))
	cl.net.Flush()
	b, err := cl.nodes[0].Propose()
	if err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	victim := block.Ref{Block: b.Header.Number, Entry: 0}
	cl.nodes[0].SubmitLocal(block.NewDeletion("user", victim).Sign(user))
	cl.net.Flush()
	if _, err := cl.nodes[0].Propose(); err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	cl.driveRounds(t, 0, 8, "truncate")
	if err := replica.Chain().CompactWait(context.Background()); err != nil {
		t.Fatal(err)
	}
	floor := replica.Chain().ResurrectionFloor()
	if floor <= frozenMarker {
		t.Fatalf("floor %d does not pass the frozen marker %d; drill is vacuous", floor, frozenMarker)
	}
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Disk incident: everything but the DELETIONS audit log is lost.
	for _, pattern := range []string{"seg-*.seg", "MANIFEST", "SNAPSHOT"} {
		matches, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	st2, err := segment.Open(dir, segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cfg.Store = st2
	cfg.Chain.Clock = simclock.NewLogical(0)
	rejoined, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rejoined.Close()
	if got := rejoined.Chain().ResurrectionFloor(); got != floor {
		t.Fatalf("rejoined floor %d, want %d", got, floor)
	}

	// Ask the forger first: it replays the frozen pre-deletion offer,
	// and the floor must reject it at chunk 0.
	rejoined.requestSync(forger.Name())
	cl.net.Flush()
	if head := rejoined.Chain().Head().Number; head != 0 {
		t.Fatalf("rejoined replica adopted the forged snapshot (head %d)", head)
	}
	st1 := rejoined.SyncStats()
	if st1.OffersRejected == 0 || st1.OffersCompleted != 0 {
		t.Fatalf("forged offer not floor-rejected: %+v", st1)
	}

	// An honest peer's offer is anchored at or above the floor: adopted.
	rejoined.requestSync(cl.nodes[0].Name())
	cl.net.Flush()
	if rejoined.Chain().HeadHash() != cl.nodes[0].Chain().HeadHash() {
		t.Fatalf("rejoined replica did not adopt the honest status quo: head %d vs %d",
			rejoined.Chain().Head().Number, cl.nodes[0].Chain().Head().Number)
	}
	if rejoined.Chain().Marker() < floor {
		t.Fatalf("adopted marker %d below the floor %d", rejoined.Chain().Marker(), floor)
	}
	if resolvable(rejoined, victim) {
		t.Fatal("victim resurrected despite the floor")
	}
	st2nd := rejoined.SyncStats()
	if st2nd.OffersCompleted != 1 {
		t.Fatalf("honest offer not adopted exactly once: %+v", st2nd)
	}
}

func TestRejectedOfferBackoffSuppressesAndLogsOnce(t *testing.T) {
	// Satellite defense: a peer whose catch-up offers keep dying on the
	// resurrection floor is muted after offerRejectLimit strikes — its
	// offers are dropped before decoding, with a single operator log
	// line — until this node deliberately asks it for data again.
	cl := newCluster(t, 3, "alpha", "user")
	user := cl.keys["user"]
	nd := cl.nodes[0]
	peer := cl.nodes[1].Name()

	// Establish a floor: seed a victim, capture a pre-deletion block,
	// delete and truncate past it.
	cl.nodes[0].SubmitLocal(block.NewData("user", []byte("bait")).Sign(user))
	cl.net.Flush()
	b, err := cl.nodes[0].Propose()
	if err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	stale := b.Encode()
	victim := block.Ref{Block: b.Header.Number, Entry: 0}
	cl.nodes[0].SubmitLocal(block.NewDeletion("user", victim).Sign(user))
	cl.net.Flush()
	if _, err := cl.nodes[0].Propose(); err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	cl.driveRounds(t, 0, 8, "truncate")
	if nd.Chain().ResurrectionFloor() <= victim.Block {
		t.Fatal("floor never passed the victim; test is vacuous")
	}

	var logged atomic.Int64
	nd.mu.Lock()
	nd.logf = func(string, ...any) { logged.Add(1) }
	nd.mu.Unlock()

	resurrect := wire.Envelope{
		Sender: peer,
		Body:   wire.EncodeSyncResp(wire.SyncRespPayload{Blocks: [][]byte{stale}}),
	}
	for i := 0; i < offerRejectLimit; i++ {
		nd.handleSyncResp(resurrect)
	}
	st := nd.SyncStats()
	if st.OffersRejected != offerRejectLimit || st.OffersSuppressed != 0 {
		t.Fatalf("after %d strikes: %+v", offerRejectLimit, st)
	}
	if logged.Load() != 0 {
		t.Fatal("suppression logged before the limit was reached")
	}

	// Strike limit reached: further offers are suppressed pre-decode,
	// and the operator line fires exactly once for the episode.
	nd.handleSyncResp(resurrect)
	nd.handleSyncResp(resurrect)
	st = nd.SyncStats()
	if st.OffersRejected != offerRejectLimit || st.OffersSuppressed != 2 {
		t.Fatalf("suppression did not engage: %+v", st)
	}
	if got := logged.Load(); got != 1 {
		t.Fatalf("suppression logged %d times, want exactly 1", got)
	}

	// A deliberate sync request to the muted peer lifts the backoff.
	nd.requestSync(peer)
	cl.net.Flush()
	nd.handleSyncResp(resurrect)
	st = nd.SyncStats()
	if st.OffersRejected != offerRejectLimit+1 {
		t.Fatalf("backoff not reset by requestSync: %+v", st)
	}
	if got := logged.Load(); got != 1 {
		t.Fatalf("log line re-fired without a new episode: %d", got)
	}
}

func TestVoteRetrySelfDrivingOnLossyNetwork(t *testing.T) {
	// With Config.VoteRetryInterval the node re-announces a pending
	// summary vote on its own timer: concurrent writers just call
	// SubmitWait and never see ErrSummaryPending, even while the network
	// is dropping a quarter of all messages.
	cl := newCluster(t, 3, "alpha")
	alpha := cl.keys["alpha"]
	for _, nd := range cl.nodes {
		nd.mu.Lock()
		nd.voteRetry = time.Millisecond
		nd.mu.Unlock()
	}
	cl.net.SetDropRate(0.25)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		e := block.NewData("alpha", []byte(fmt.Sprintf("lossy-%d", i))).Sign(alpha)
		if _, err := cl.nodes[0].SubmitWait(ctx, e); err != nil {
			t.Fatalf("SubmitWait %d under loss: %v", i, err)
		}
	}
	if cl.nodes[0].Chain().Marker() == 0 {
		t.Fatal("no summary completed under loss; retry never exercised")
	}
	// Clean rounds let the stragglers sync, then everyone must agree.
	cl.net.SetDropRate(0)
	cl.driveRounds(t, 0, 3, "recover")
	if err := cl.headsAndMarkersAgree(); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedSnapshotBoundsStagedMemory(t *testing.T) {
	// The chunked sync ceiling: a snapshot spanning several chunks is
	// streamed through the restore pipeline, and the blocks staged in
	// the receive path never exceed the wire chunk bound — however long
	// the offered chain is.
	old := snapChunkBlocks
	snapChunkBlocks = 2
	t.Cleanup(func() { snapChunkBlocks = old })

	cl := newCluster(t, 3, "alpha")
	lagger := cl.nodes[2]
	cl.driveRounds(t, 0, 2, "seed")
	cl.net.Partition([]string{lagger.Name()})
	cl.driveRounds(t, 0, 8, "ahead")
	// Top up the live window so the offer needs several 2-block chunks.
	for cl.nodes[0].Chain().Head().Number-cl.nodes[0].Chain().Marker()+1 < 5 {
		cl.driveRounds(t, 0, 1, "window")
	}
	if lagger.Chain().Head().Number >= cl.nodes[0].Chain().Marker() {
		t.Fatal("lagger not behind the marker; snapshot path not exercised")
	}
	cl.net.Heal()
	cl.driveRounds(t, 0, 2, "heal")
	if err := cl.headsAndMarkersAgree(); err != nil {
		t.Fatal(err)
	}
	st := lagger.SyncStats()
	if st.OffersCompleted < 1 {
		t.Fatalf("lagger adopted no snapshot: %+v", st)
	}
	if st.ChunksReceived < 3 {
		t.Fatalf("offer was not multi-chunk (chunks %d): %+v", st.ChunksReceived, st)
	}
	if st.PeakStagedBlocks < 1 || st.PeakStagedBlocks > int64(wire.MaxSnapshotChunkBlocks) {
		t.Fatalf("staged-block peak %d outside (0, %d]", st.PeakStagedBlocks, wire.MaxSnapshotChunkBlocks)
	}
}

func TestSnapshotSessionRejectsBrokenChunkStreams(t *testing.T) {
	// The receiver-side continuity checks, driven directly: competing
	// offers are ignored while one streams, gaps abort the session, and
	// stragglers without a session are dropped.
	cl := newCluster(t, 3, "alpha")
	nd := cl.nodes[0]
	genesis := cl.nodes[1].Chain().Blocks()[0]

	open := wire.SnapshotPayload{
		OfferID: 9, Chunk: 0, Last: false,
		Marker: genesis.Header.Number, Head: genesis.Header.Number,
		Blocks: [][]byte{genesis.Encode()},
	}
	nd.handleSnapshotResp(wire.Envelope{Sender: cl.nodes[1].Name(), Body: wire.EncodeSnapshot(open)})
	if st := nd.SyncStats(); st.OffersStarted != 1 {
		t.Fatalf("offer did not open a session: %+v", st)
	}

	// A competing chunk-0 from another sender while the first streams.
	nd.handleSnapshotResp(wire.Envelope{Sender: cl.nodes[2].Name(), Body: wire.EncodeSnapshot(open)})
	if st := nd.SyncStats(); st.OffersIgnored != 1 {
		t.Fatalf("competing offer not ignored: %+v", st)
	}

	// A gap in the chunk index kills the session.
	gap := wire.SnapshotPayload{
		OfferID: 9, Chunk: 2, Last: true,
		Marker: genesis.Header.Number + 1, Head: genesis.Header.Number + 1,
		Blocks: [][]byte{genesis.Encode()},
	}
	nd.handleSnapshotResp(wire.Envelope{Sender: cl.nodes[1].Name(), Body: wire.EncodeSnapshot(gap)})
	if st := nd.SyncStats(); st.OffersAborted != 1 {
		t.Fatalf("gapped stream not aborted: %+v", st)
	}

	// With no session left, a mid-stream chunk is dropped without side
	// effects.
	tail := gap
	tail.Chunk = 1
	before := nd.SyncStats()
	nd.handleSnapshotResp(wire.Envelope{Sender: cl.nodes[1].Name(), Body: wire.EncodeSnapshot(tail)})
	after := nd.SyncStats()
	before.ChunksReceived++
	if after != before {
		t.Fatalf("sessionless chunk had side effects: %+v vs %+v", after, before)
	}
}
