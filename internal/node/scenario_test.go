package node

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/seldel/seldel/internal/attack"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store/segment"
)

// The scenario suite: multi-phase failure drills for the cluster layer,
// scripted on the netsim scenario harness so every phase observes a
// settled network and failures name the step that broke.

// driveRounds submits one entry per round through leader and proposes,
// retrying while a summary vote is pending.
func (cl *cluster) driveRounds(t *testing.T, leader int, rounds int, tag string) {
	t.Helper()
	alpha := cl.keys["alpha"]
	for i := 0; i < rounds; i++ {
		cl.nodes[leader].SubmitLocal(block.NewData("alpha", []byte(fmt.Sprintf("%s-%d", tag, i))).Sign(alpha))
		cl.net.Flush()
		for attempt := 0; ; attempt++ {
			_, err := cl.nodes[leader].Propose()
			cl.net.Flush()
			if err == nil {
				break
			}
			if !errors.Is(err, ErrSummaryPending) {
				t.Fatalf("%s round %d: %v", tag, i, err)
			}
			if attempt > 200 {
				t.Fatalf("%s round %d: summary vote never completed", tag, i)
			}
		}
	}
}

// headsAndMarkersAgree returns an error naming the first diverged node.
func (cl *cluster) headsAndMarkersAgree() error {
	ref := cl.nodes[0].Chain()
	for _, n := range cl.nodes[1:] {
		c := n.Chain()
		if c.HeadHash() != ref.HeadHash() {
			return fmt.Errorf("%s head %d/%s diverges from %s head %d/%s",
				n.Name(), c.Head().Number, c.HeadHash(), cl.nodes[0].Name(), ref.Head().Number, ref.HeadHash())
		}
		if c.Marker() != ref.Marker() {
			return fmt.Errorf("%s marker %d != %d", n.Name(), c.Marker(), ref.Marker())
		}
	}
	return nil
}

func TestDeletionPropagationUnderPartition(t *testing.T) {
	// The satellite scenario: a deletion is requested, approved, and
	// physically executed on the majority side of a partition; after the
	// heal the minority — whose heads predate the quorum's new Genesis
	// marker — adopts the truncated status quo via the snapshot message
	// and converges to a chain where the victim entry no longer exists.
	cl := newCluster(t, 5, "alpha", "user")
	sc := netsim.NewScenario(cl.net)

	var victim block.Ref
	_ = sc.Step("seed a victim entry", func() error {
		e := block.NewData("user", []byte("right to be forgotten")).Sign(cl.keys["user"])
		cl.nodes[0].SubmitLocal(e)
		cl.net.Flush()
		b, err := cl.nodes[0].Propose()
		if err != nil {
			return err
		}
		victim = block.Ref{Block: b.Header.Number, Entry: 0}
		return nil
	})
	minority := []string{cl.nodes[3].Name(), cl.nodes[4].Name()}
	_ = sc.Partition("isolate a 2-node minority", minority)
	_ = sc.Step("majority approves the deletion", func() error {
		del := block.NewDeletion("user", victim).Sign(cl.keys["user"])
		cl.nodes[0].SubmitLocal(del)
		cl.net.Flush()
		if _, err := cl.nodes[0].Propose(); err != nil {
			return err
		}
		cl.net.Flush()
		if !cl.nodes[0].Chain().IsMarked(victim) && !deleted(cl.nodes[0], victim) {
			return fmt.Errorf("deletion request had no effect on the majority")
		}
		return nil
	})
	_ = sc.Step("majority truncates past the victim", func() error {
		cl.driveRounds(t, 0, 8, "during")
		maj := cl.nodes[0].Chain()
		if maj.Marker() <= victim.Block {
			return fmt.Errorf("marker %d never passed victim block %d; scenario is vacuous", maj.Marker(), victim.Block)
		}
		if !deleted(cl.nodes[0], victim) {
			return fmt.Errorf("victim still resolvable on the majority")
		}
		// The scenario must exercise snapshot adoption, not incremental
		// catch-up: the minority heads predate the new marker.
		for _, n := range cl.nodes[3:] {
			if n.Chain().Head().Number >= maj.Marker() {
				return fmt.Errorf("%s head %d not behind the majority marker %d",
					n.Name(), n.Chain().Head().Number, maj.Marker())
			}
			if !resolvable(n, victim) {
				return fmt.Errorf("%s lost the victim before the heal", n.Name())
			}
		}
		return nil
	})
	_ = sc.Heal("heal the partition")
	_ = sc.Step("gossip a round so the minority syncs", func() error {
		cl.driveRounds(t, 0, 2, "after")
		return nil
	})
	_ = sc.Check("minority adopted the truncated status quo", func() error {
		if err := cl.headsAndMarkersAgree(); err != nil {
			return err
		}
		for _, n := range cl.nodes {
			if !deleted(n, victim) {
				return fmt.Errorf("%s still resolves the deleted entry", n.Name())
			}
			if n.Forked() {
				return fmt.Errorf("%s reports forked after adoption", n.Name())
			}
			if err := n.Chain().VerifyIntegrity(); err != nil {
				return fmt.Errorf("%s integrity: %w", n.Name(), err)
			}
			// No genesis replay: the first live block IS the marker block.
			if first := n.Chain().Blocks()[0].Header.Number; first != n.Chain().Marker() || first == 0 {
				return fmt.Errorf("%s live chain starts at %d, marker %d — not snapshot-anchored",
					n.Name(), first, n.Chain().Marker())
			}
		}
		return nil
	})
	if sc.Err() != nil {
		for _, step := range sc.History() {
			t.Logf("step %-45s err=%v", step.Name, step.Err)
		}
		t.Fatal(sc.Err())
	}
}

func resolvable(n *Node, ref block.Ref) bool {
	_, _, ok := n.Chain().Lookup(ref)
	return ok
}

func deleted(n *Node, ref block.Ref) bool {
	return !resolvable(n, ref)
}

func TestDeletionDuringSyncConverges(t *testing.T) {
	// A deletion request lands while the healed minority is still
	// adopting the snapshot: the fresh request gossips concurrently with
	// the snapshot and incremental sync traffic, and everyone still
	// converges on the doubly-truncated chain.
	cl := newCluster(t, 5, "alpha", "user")
	user := cl.keys["user"]

	e := block.NewData("user", []byte("first victim")).Sign(user)
	cl.nodes[0].SubmitLocal(e)
	cl.net.Flush()
	b, err := cl.nodes[0].Propose()
	if err != nil {
		t.Fatal(err)
	}
	first := block.Ref{Block: b.Header.Number, Entry: 0}
	e2 := block.NewData("user", []byte("second victim")).Sign(user)
	cl.nodes[0].SubmitLocal(e2)
	cl.net.Flush()
	b2, err := cl.nodes[0].Propose()
	if err != nil {
		t.Fatal(err)
	}
	second := block.Ref{Block: b2.Header.Number, Entry: 0}

	cl.net.Partition([]string{cl.nodes[3].Name(), cl.nodes[4].Name()})
	cl.nodes[0].SubmitLocal(block.NewDeletion("user", first).Sign(user))
	cl.net.Flush()
	if _, err := cl.nodes[0].Propose(); err != nil {
		t.Fatal(err)
	}
	cl.driveRounds(t, 0, 8, "partitioned")
	if cl.nodes[0].Chain().Marker() <= first.Block {
		t.Fatal("first deletion never truncated; test is vacuous")
	}

	// Heal, and in the same breath push a second deletion into the mix:
	// the minority's sync and the new request race on the wire.
	cl.net.Heal()
	cl.nodes[0].SubmitLocal(block.NewDeletion("user", second).Sign(user))
	if _, err := cl.nodes[0].Propose(); err != nil && !errors.Is(err, ErrSummaryPending) {
		t.Fatal(err)
	}
	cl.net.Flush()
	cl.driveRounds(t, 0, 8, "healed")

	if err := cl.headsAndMarkersAgree(); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.nodes {
		if resolvable(n, first) {
			t.Errorf("%s still resolves the first victim", n.Name())
		}
		if resolvable(n, second) {
			t.Errorf("%s still resolves the second victim (deleted during sync)", n.Name())
		}
	}
}

func TestRestartRestoresFromSnapshotStore(t *testing.T) {
	// A node with a segment store restarts: its chain comes back from
	// the store's snapshot checkpoint (no genesis replay), it rejoins
	// under its old name, and catches up incrementally.
	cl := newCluster(t, 3, "alpha")
	dir := t.TempDir()
	st, err := segment.Open(dir, segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The stored node is a non-voting follower: it shares the 3-member
	// quorum definition (so it trusts the members' votes and sync data)
	// without being a member itself — the members ignore its votes.
	name := "anchor-follower"
	kp := identity.Deterministic(name, "cluster-test")
	if err := cl.registry.RegisterKey(kp, identity.RoleMaster); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Key: kp,
		Chain: chain.Config{
			SequenceLength: 3,
			MaxSequences:   2,
			Shrink:         chain.ShrinkAllButNewest,
			Registry:       cl.registry,
			Clock:          simclock.NewLogical(0),
		},
		Quorum:  cl.nodes[0].quorum,
		Network: cl.net,
		Store:   st,
	}
	stored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cl.driveRounds(t, 0, 8, "before-restart")
	if cl.nodes[0].Chain().Marker() == 0 {
		t.Fatal("no marker shift before restart; test is vacuous")
	}
	if stored.Chain().HeadHash() != cl.nodes[0].Chain().HeadHash() {
		t.Fatal("stored follower diverged before restart")
	}
	if err := stored.Chain().CompactWait(context.Background()); err != nil {
		t.Fatal(err)
	}
	headBefore := stored.Chain().Head().Number
	markerBefore := stored.Chain().Marker()
	if err := stored.Close(); err != nil {
		t.Fatal(err)
	}

	// The cluster moves on while the node is down.
	cl.driveRounds(t, 0, 2, "while-down")

	restarted, err := New(cfg)
	if err != nil {
		t.Fatalf("restart from store: %v", err)
	}
	defer restarted.Close()
	c := restarted.Chain()
	if c.Head().Number != headBefore {
		t.Errorf("restored head %d, want %d", c.Head().Number, headBefore)
	}
	if c.Marker() != markerBefore || c.Marker() == 0 {
		t.Errorf("restored marker %d, want %d (non-zero)", c.Marker(), markerBefore)
	}
	// Snapshot restore: the live chain starts at the marker block, and
	// only the live suffix was replayed — no genesis in sight.
	if first := c.Blocks()[0].Header.Number; first != c.Marker() {
		t.Errorf("restored chain starts at %d, marker %d — genesis replay?", first, c.Marker())
	}
	if got, want := c.Stats().AppendedBlocks, uint64(len(c.Blocks())); got != want {
		t.Errorf("restore replayed %d blocks for %d live ones", got, want)
	}

	// Rejoined under the old name: the next proposal's gossip reveals
	// the gap and incremental sync closes it.
	cl.driveRounds(t, 0, 2, "after-restart")
	if restarted.Chain().HeadHash() != cl.nodes[0].Chain().HeadHash() {
		t.Errorf("restarted node did not catch up: head %d vs %d",
			restarted.Chain().Head().Number, cl.nodes[0].Chain().Head().Number)
	}
	if err := restarted.Chain().VerifyIntegrity(); err != nil {
		t.Errorf("restarted chain integrity: %v", err)
	}
}

func TestByzantineNonVoterToleranceAndLiveness(t *testing.T) {
	// Silent members at the tolerance bound: a 5-member quorum needs 3
	// identical votes, so 2 members may withhold and the marker still
	// shifts; the silent nodes follow the decisions they observe.
	if tol := attack.WithholdingTolerance(5); tol != 2 {
		t.Fatalf("WithholdingTolerance(5) = %d, want 2", tol)
	}
	cl := newClusterWithByzantine(t, 5,
		map[int]attack.Behavior{3: attack.VoteWithholding, 4: attack.VoteWithholding}, "alpha")
	cl.driveRounds(t, 0, 8, "tolerated")
	if cl.nodes[0].Chain().Marker() == 0 {
		t.Fatal("quorum with one silent member never shifted the marker")
	}
	if err := cl.headsAndMarkersAgree(); err != nil {
		t.Fatalf("silent member diverged: %v", err)
	}
	for _, n := range cl.nodes {
		if n.Forked() {
			t.Errorf("%s reports forked", n.Name())
		}
	}

	// Beyond the bound liveness is lost (safety holds): with 2 of 3
	// members silent the 2-vote threshold is unreachable and proposals
	// stall at the summary slot with ErrSummaryPending.
	stuck := newClusterWithByzantine(t, 3,
		map[int]attack.Behavior{1: attack.VoteWithholding, 2: attack.VoteWithholding}, "alpha")
	alpha := stuck.keys["alpha"]
	var lastErr error
	for i := 0; i < 6; i++ {
		stuck.nodes[0].SubmitLocal(block.NewData("alpha", []byte(fmt.Sprintf("stall-%d", i))).Sign(alpha))
		stuck.net.Flush()
		_, lastErr = stuck.nodes[0].Propose()
		stuck.net.Flush()
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrSummaryPending) {
		t.Errorf("over-tolerance quorum: Propose = %v, want ErrSummaryPending", lastErr)
	}
	if stuck.nodes[0].Chain().Marker() != 0 {
		t.Error("marker shifted without a quorum majority")
	}
}

// newClusterWithByzantine is newCluster with per-index fault injection.
func newClusterWithByzantine(t *testing.T, n int, faults map[int]attack.Behavior, users ...string) *cluster {
	t.Helper()
	cl := &cluster{
		net:      netsim.New(netsim.Config{}),
		registry: identity.NewRegistry(),
		keys:     make(map[string]*identity.KeyPair),
	}
	t.Cleanup(cl.net.Close)
	var anchorNames []string
	for i := 0; i < n; i++ {
		anchorNames = append(anchorNames, fmt.Sprintf("anchor-%d", i))
	}
	quorum, err := consensus.NewQuorum(anchorNames)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range anchorNames {
		kp := identity.Deterministic(name, "cluster-test")
		if err := cl.registry.RegisterKey(kp, identity.RoleMaster); err != nil {
			t.Fatal(err)
		}
		cl.keys[name] = kp
	}
	for _, u := range users {
		kp := identity.Deterministic(u, "cluster-test")
		if err := cl.registry.RegisterKey(kp, identity.RoleUser); err != nil {
			t.Fatal(err)
		}
		cl.keys[u] = kp
	}
	for i, name := range anchorNames {
		nd, err := New(Config{
			Key: cl.keys[name],
			Chain: chain.Config{
				SequenceLength: 3,
				MaxSequences:   2,
				Shrink:         chain.ShrinkAllButNewest,
				Registry:       cl.registry,
				Clock:          simclock.NewLogical(0),
			},
			Quorum:    quorum,
			Network:   cl.net,
			Byzantine: faults[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		cl.nodes = append(cl.nodes, nd)
	}
	return cl
}

func TestLaggingNodeCatchesUp(t *testing.T) {
	// One member on a slow link: proposals do not wait for it (the other
	// two reach the vote threshold alone), and its deliveries — however
	// late — bring it to the same head.
	cl := newCluster(t, 3, "alpha")
	laggard := cl.nodes[2].Name()
	cl.net.SetPeerLatency(laggard, 2*time.Millisecond)
	cl.driveRounds(t, 0, 6, "lagged")
	cl.net.SetPeerLatency(laggard, 0)
	cl.driveRounds(t, 0, 2, "recovered")
	if err := cl.headsAndMarkersAgree(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSubmitPipelineConcurrent(t *testing.T) {
	// The tentpole write path: concurrent local producers coalesce
	// through the node's proposal pipeline, receipts resolve to stable
	// refs, and the whole cluster converges on the proposed blocks.
	cl := newCluster(t, 3, "alpha")
	alpha := cl.keys["alpha"]
	const producers = 8
	const perProducer = 12
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, producers)
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				e := block.NewData("alpha", []byte(fmt.Sprintf("w%d-%d", w, i))).Sign(alpha)
				sealed, err := cl.nodes[0].SubmitWait(ctx, e)
				if err != nil {
					errCh <- fmt.Errorf("producer %d: %w", w, err)
					return
				}
				if _, _, ok := cl.nodes[0].Chain().Lookup(sealed[0].Ref); !ok {
					errCh <- fmt.Errorf("producer %d: sealed ref %v not resolvable", w, sealed[0].Ref)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	cl.net.Flush()
	// Concurrent production crossed summary slots; peers followed.
	if err := cl.headsAndMarkersAgree(); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.nodes {
		if err := n.Chain().VerifyIntegrity(); err != nil {
			t.Errorf("%s integrity: %v", n.Name(), err)
		}
	}
	stats := cl.nodes[0].PipelineStats()
	if stats.Batches == 0 {
		t.Error("proposal pipeline sealed no batches")
	}
	if stats.Entries != producers*perProducer {
		t.Errorf("pipeline sealed %d entries, want %d", stats.Entries, producers*perProducer)
	}
	// Coalescing happened: fewer batches than entries is the point of
	// routing proposals through the batcher.
	if stats.Batches > stats.Entries {
		t.Errorf("batches %d > entries %d", stats.Batches, stats.Entries)
	}
}

func TestNodeSubmitDeletionReceiptOutcome(t *testing.T) {
	// Deletion requests submitted through the node pipeline precheck
	// their co-signatures before the vote and surface the mark outcome
	// on the receipt.
	cl := newCluster(t, 3, "alpha", "user")
	ctx := context.Background()
	user := cl.keys["user"]
	sealed, err := cl.nodes[0].SubmitWait(ctx, block.NewData("user", []byte("target")).Sign(user))
	if err != nil {
		t.Fatal(err)
	}
	cl.net.Flush()
	del, err := cl.nodes[0].SubmitWait(ctx, block.NewDeletion("user", sealed[0].Ref).Sign(user))
	if err != nil {
		t.Fatal(err)
	}
	if del[0].Mark != mempool.MarkApproved {
		t.Errorf("deletion receipt mark = %v, want approved", del[0].Mark)
	}
	cl.net.Flush()
	for _, n := range cl.nodes {
		if !n.Chain().IsMarked(sealed[0].Ref) {
			t.Errorf("%s did not adopt the deletion mark", n.Name())
		}
	}
}
