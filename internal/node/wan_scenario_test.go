package node

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/seldel/seldel/internal/attack"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/simclock"
)

// The WAN suite: the cluster drills of the scenario harness scaled to
// 50-100 in-process anchor nodes on geo-latency links. Everything runs
// on virtual time (netsim delay heap + simclock), so a drill spanning
// minutes of simulated WAN traffic finishes in seconds of wall clock
// and its convergence-round counts are reproducible run to run.

// wanNodeCount is the cluster size for the WAN drills, overridable via
// SELDEL_WAN_NODES (the CI scenario-suite job pins it to 50).
func wanNodeCount(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("SELDEL_WAN_NODES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 5 {
			t.Fatalf("SELDEL_WAN_NODES=%q: want an integer >= 5", v)
		}
		return n
	}
	return 50
}

// newWANCluster builds n anchor nodes spread round-robin across the
// given geo topology, with deterministic link decisions from seed. The
// shared registry's verify cache collapses the n-fold re-verification
// of every broadcast envelope into one Ed25519 check cluster-wide,
// which is what makes 50-node vote rounds cheap enough to drill.
func newWANCluster(t *testing.T, n int, geo *netsim.Geo, seed int64, faults map[int]attack.Behavior) *cluster {
	t.Helper()
	cl := &cluster{
		net:      netsim.New(netsim.Config{Seed: seed}),
		registry: identity.NewRegistry(),
		keys:     make(map[string]*identity.KeyPair),
	}
	t.Cleanup(cl.net.Close)
	cl.registry.EnableVerifyCache(1 << 16)

	var anchorNames []string
	for i := 0; i < n; i++ {
		anchorNames = append(anchorNames, fmt.Sprintf("anchor-%d", i))
	}
	quorum, err := consensus.NewQuorum(anchorNames)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range anchorNames {
		kp := identity.Deterministic(name, "wan-test")
		if err := cl.registry.RegisterKey(kp, identity.RoleMaster); err != nil {
			t.Fatal(err)
		}
		cl.keys[name] = kp
	}
	for _, u := range []string{"alpha", "user"} {
		kp := identity.Deterministic(u, "wan-test")
		if err := cl.registry.RegisterKey(kp, identity.RoleUser); err != nil {
			t.Fatal(err)
		}
		cl.keys[u] = kp
	}
	if geo != nil {
		geo.AssignRoundRobin(anchorNames...)
		cl.net.SetGeo(geo)
	}
	for i, name := range anchorNames {
		nd, err := New(cl.wanNodeConfig(name, quorum, faults[i]))
		if err != nil {
			t.Fatal(err)
		}
		cl.nodes = append(cl.nodes, nd)
	}
	// Close whatever node object currently holds each slot — storm waves
	// replace entries in cl.nodes, and Close is idempotent.
	t.Cleanup(func() {
		for _, nd := range cl.nodes {
			nd.Close()
		}
	})
	return cl
}

func (cl *cluster) wanNodeConfig(name string, quorum *consensus.Quorum, b attack.Behavior) Config {
	return Config{
		Key: cl.keys[name],
		Chain: chain.Config{
			SequenceLength: 3,
			MaxSequences:   2,
			Shrink:         chain.ShrinkAllButNewest,
			Registry:       cl.registry,
			Clock:          simclock.NewLogical(0),
		},
		Quorum:    quorum,
		Network:   cl.net,
		Byzantine: b,
	}
}

// nodeByName finds the current node object for an endpoint name.
func (cl *cluster) nodeByName(name string) *Node {
	for _, nd := range cl.nodes {
		if nd.Name() == name {
			return nd
		}
	}
	return nil
}

// wanDeletionConvergence runs one full 3-way-partition deletion drill at
// n nodes and returns the post-heal convergence round count plus the
// converged head hash and marker — the determinism triple two identical
// runs must reproduce bit-for-bit.
//
// The deletion request lands while the cluster is split along its three
// region borders: no side holds the floor(n/2)+1 majority, so the
// summary carrying the truncation can pass nowhere and the victim entry
// must stay resolvable cluster-wide until the heal.
func wanDeletionConvergence(t *testing.T, n int, seed int64) (rounds int, head codec.Hash, marker uint64) {
	t.Helper()
	geo := netsim.ThreeRegions()
	cl := newWANCluster(t, n, geo, seed, nil)
	sc := netsim.NewScenario(cl.net)
	user := cl.keys["user"]

	var victim block.Ref
	_ = sc.Step("seed a victim entry", func() error {
		cl.nodes[0].SubmitLocal(block.NewData("user", []byte("right to be forgotten at WAN scale")).Sign(user))
		cl.net.Flush()
		b, err := cl.nodes[0].Propose()
		if err != nil {
			return err
		}
		victim = block.Ref{Block: b.Header.Number, Entry: 0}
		cl.net.Flush()
		return nil
	})

	regions := geo.Regions()
	groups := make([][]string, len(regions))
	for i, r := range regions {
		groups[i] = geo.Members(r)
	}
	_ = sc.Partition("split along the three region borders", groups...)
	_ = sc.Step("deletion requested in the leader's region", func() error {
		cl.nodes[0].SubmitLocal(block.NewDeletion("user", victim).Sign(user))
		cl.net.Flush()
		// The leader's region seals the request and the slots after it,
		// then stalls at the summary: its region cannot raise a majority.
		var lastErr error
		for i := 0; i < 6 && lastErr == nil; i++ {
			_, lastErr = cl.nodes[0].Propose()
			cl.net.Flush()
		}
		if !errors.Is(lastErr, ErrSummaryPending) {
			return fmt.Errorf("leader region: Propose = %v, want ErrSummaryPending", lastErr)
		}
		for i := 0; i < 3; i++ {
			if _, err := cl.nodes[0].Propose(); !errors.Is(err, ErrSummaryPending) {
				return fmt.Errorf("summary unstuck without a majority: %v", err)
			}
			cl.net.Flush()
		}
		return nil
	})
	_ = sc.Check("no region executed the deletion", func() error {
		for _, nd := range cl.nodes {
			if !resolvable(nd, victim) {
				return fmt.Errorf("%s lost the victim without a quorum majority", nd.Name())
			}
			if nd.Forked() {
				return fmt.Errorf("%s reports forked during the partition", nd.Name())
			}
		}
		// The mark itself crossed no region border.
		for _, g := range groups[1:] {
			if nd := cl.nodeByName(g[0]); nd.Chain().IsMarked(victim) {
				return fmt.Errorf("%s saw the deletion mark across the partition", nd.Name())
			}
		}
		return nil
	})
	_ = sc.Heal("heal the partition")

	converged := func() bool {
		if cl.headsAndMarkersAgree() != nil {
			return false
		}
		if cl.nodes[0].Chain().Marker() <= victim.Block {
			return false
		}
		for _, nd := range cl.nodes {
			if !deleted(nd, victim) || nd.Forked() {
				return false
			}
		}
		return true
	}
	_ = sc.Step("converge on the truncated chain", func() error {
		for ; rounds < 60; rounds++ {
			if converged() {
				return nil
			}
			cl.driveRounds(t, 0, 1, fmt.Sprintf("post-heal-%d", rounds))
		}
		return fmt.Errorf("no convergence within 60 rounds (marker %d, victim block %d)",
			cl.nodes[0].Chain().Marker(), victim.Block)
	})
	_ = sc.Check("deletion held everywhere", func() error {
		for _, nd := range cl.nodes {
			if resolvable(nd, victim) {
				return fmt.Errorf("%s still resolves the deleted entry", nd.Name())
			}
			if err := nd.Chain().VerifyIntegrity(); err != nil {
				return fmt.Errorf("%s integrity: %w", nd.Name(), err)
			}
		}
		return nil
	})
	if sc.Err() != nil {
		for _, step := range sc.History() {
			t.Logf("step %-45s virtual=%-12v err=%v", step.Name, step.VirtualElapsed, step.Err)
		}
		t.Fatal(sc.Err())
	}
	return rounds, cl.nodes[0].Chain().HeadHash(), cl.nodes[0].Chain().Marker()
}

func TestWANThreeWayPartitionDeletionConverges(t *testing.T) {
	n := wanNodeCount(t)
	const seed = 42
	rounds, head, marker := wanDeletionConvergence(t, n, seed)
	t.Logf("%d nodes: converged in %d post-heal rounds (marker %d)", n, rounds, marker)
	if marker == 0 {
		t.Fatal("converged without ever shifting the marker")
	}

	// Determinism gate: the identical drill — same node count, same
	// seed — must reproduce the convergence-round count and the
	// converged chain exactly.
	rounds2, head2, marker2 := wanDeletionConvergence(t, n, seed)
	if rounds2 != rounds || head2 != head || marker2 != marker {
		t.Fatalf("drill not deterministic: run1=(%d rounds, head %s, marker %d) run2=(%d rounds, head %s, marker %d)",
			rounds, head, marker, rounds2, head2, marker2)
	}
}

// runWANStorm is the crash-restart-storm drill body: waves of roughly a
// third of the followers crash (losing all local state), the survivors
// absorb writes, and every returning node — now behind the moving
// Genesis marker — must catch up through a chunked snapshot offer.
func runWANStorm(t *testing.T, n, waves int) {
	t.Helper()
	geo := netsim.ThreeRegions()
	cl := newWANCluster(t, n, geo, 7, nil)
	sc := netsim.NewScenario(cl.net)
	quorum := cl.nodes[0].quorum

	_ = sc.Step("build history past the first merge", func() error {
		cl.driveRounds(t, 0, 8, "warmup")
		if cl.nodes[0].Chain().Marker() == 0 {
			return fmt.Errorf("no marker shift during warmup; storm would be vacuous")
		}
		return nil
	})

	// Followers 1..n-1 are split into `waves` cohorts; wave w cycles
	// cohort w. Node 0 stays up as the driving proposer.
	cohort := func(wave int) []string {
		per := (n - 1) / waves
		var out []string
		for i := 1 + wave*per; i < 1+(wave+1)*per && i < n; i++ {
			out = append(out, fmt.Sprintf("anchor-%d", i))
		}
		return out
	}
	restarted := make(map[string]bool)
	_ = sc.Storm("crash-restart storm", netsim.Storm{
		Waves: waves,
		Nodes: cohort,
		Stop: func(name string) error {
			return cl.nodeByName(name).Close()
		},
		During: func(wave int) error {
			cl.driveRounds(t, 0, 3, fmt.Sprintf("storm-wave-%d", wave))
			return nil
		},
		Restart: func(name string) error {
			// State-loss restart: no store, fresh genesis, old name and
			// key — the worst-case rejoin the snapshot path must absorb.
			nd, err := New(cl.wanNodeConfig(name, quorum, attack.Honest))
			if err != nil {
				return err
			}
			for i := range cl.nodes {
				if cl.nodes[i].Name() == name {
					cl.nodes[i] = nd
				}
			}
			restarted[name] = true
			return nil
		},
	})
	_ = sc.Step("post-storm settle", func() error {
		cl.driveRounds(t, 0, 3, "post-storm")
		return nil
	})
	_ = sc.Check("every node converged, restarts via chunked snapshot", func() error {
		if err := cl.headsAndMarkersAgree(); err != nil {
			return err
		}
		for _, nd := range cl.nodes {
			if nd.Forked() {
				return fmt.Errorf("%s reports forked after the storm", nd.Name())
			}
		}
		for name := range restarted {
			st := cl.nodeByName(name).SyncStats()
			if st.OffersCompleted < 1 {
				return fmt.Errorf("restarted %s adopted no snapshot offer (stats %+v)", name, st)
			}
		}
		return nil
	})
	if sc.Err() != nil {
		for _, step := range sc.History() {
			t.Logf("step %-45s virtual=%-12v err=%v", step.Name, step.VirtualElapsed, step.Err)
		}
		t.Fatal(sc.Err())
	}
	if len(restarted) == 0 {
		t.Fatal("storm cycled no nodes")
	}
	t.Logf("%d nodes, %d waves: %d nodes crash-restarted and resynced", n, waves, len(restarted))
}

func TestWANCrashRestartStorm(t *testing.T) {
	runWANStorm(t, wanNodeCount(t), 3)
}

func TestWANCrashRestartStormHundredNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("100-node storm skipped in -short mode")
	}
	runWANStorm(t, 100, 2)
}
