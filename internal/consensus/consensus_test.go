package consensus

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
)

func testBlock(num uint64) *block.Block {
	kp := identity.Deterministic("alpha", "consensus-test")
	e := block.NewData("alpha", []byte(fmt.Sprintf("p%d", num))).Sign(kp)
	return block.NewNormal(num, num+1, block.GenesisPrevHash, []*block.Entry{e})
}

func TestNoOpEngine(t *testing.T) {
	var e NoOp
	b := testBlock(1)
	if err := e.Seal(b); err != nil {
		t.Fatal(err)
	}
	if err := e.VerifySeal(b); err != nil {
		t.Fatal(err)
	}
	if e.Name() != "noop" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestPoWSealAndVerify(t *testing.T) {
	p := NewPoW(10)
	b := testBlock(1)
	if err := p.Seal(b); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := p.VerifySeal(b); err != nil {
		t.Errorf("VerifySeal: %v", err)
	}
	if got := leadingZeroBits(b.Hash()); got < 10 {
		t.Errorf("sealed hash has %d leading zero bits", got)
	}
	// Tampering invalidates the seal with overwhelming probability.
	b.Header.Time++
	if err := p.VerifySeal(b); !errors.Is(err, ErrSealInvalid) {
		t.Errorf("tampered block: %v, want ErrSealInvalid", err)
	}
}

func TestPoWExhaustion(t *testing.T) {
	p := &PoW{Bits: 64, MaxIter: 10}
	if err := p.Seal(testBlock(1)); !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v, want ErrExhausted", err)
	}
}

func TestPoWName(t *testing.T) {
	if got := NewPoW(12).Name(); got != "pow-12" {
		t.Errorf("Name = %q", got)
	}
}

func TestLeadingZeroBits(t *testing.T) {
	var h codec.Hash
	if got := leadingZeroBits(h); got != 256 {
		t.Errorf("all-zero hash: %d, want 256", got)
	}
	h[0] = 0x80
	if got := leadingZeroBits(h); got != 0 {
		t.Errorf("msb set: %d, want 0", got)
	}
	h[0] = 0x01
	if got := leadingZeroBits(h); got != 7 {
		t.Errorf("0x01 first byte: %d, want 7", got)
	}
	h[0] = 0
	h[9] = 0x40
	if got := leadingZeroBits(h); got != 73 {
		t.Errorf("bit 73: %d, want 73", got)
	}
}

func TestQuickPoWMonotonicity(t *testing.T) {
	// Property: a seal valid at difficulty d is valid at all d' <= d.
	p := NewPoW(8)
	f := func(seed uint8) bool {
		b := testBlock(uint64(seed))
		if err := p.Seal(b); err != nil {
			return false
		}
		for d := 0; d <= 8; d++ {
			if err := (&PoW{Bits: d}).VerifySeal(b); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAuthorityRoundRobin(t *testing.T) {
	auths := []string{"n0", "n1", "n2"}
	a, err := NewAuthority(auths, "n1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "poa" {
		t.Errorf("Name = %q", a.Name())
	}
	if got := a.LeaderOf(4); got != "n1" {
		t.Errorf("LeaderOf(4) = %q, want n1", got)
	}
	// n1 leads slots 1, 4, 7, …
	b := testBlock(4)
	if err := a.Seal(b); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := a.VerifySeal(b); err != nil {
		t.Errorf("VerifySeal: %v", err)
	}
	// Not the leader for slot 5.
	if err := a.Seal(testBlock(5)); !errors.Is(err, ErrNotLeader) {
		t.Errorf("err = %v, want ErrNotLeader", err)
	}
	// A block claiming the wrong authority index fails verification.
	forged := testBlock(5)
	forged.Header.Nonce = 1 // slot 5 belongs to authority 2
	if err := a.VerifySeal(forged); !errors.Is(err, ErrSealInvalid) {
		t.Errorf("err = %v, want ErrSealInvalid", err)
	}
}

func TestNewAuthorityValidation(t *testing.T) {
	if _, err := NewAuthority(nil, "x"); err == nil {
		t.Error("empty authority set accepted")
	}
	// A non-authority observer can verify but never seal.
	a, err := NewAuthority([]string{"n0"}, "observer")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Seal(testBlock(0)); !errors.Is(err, ErrNotLeader) {
		t.Errorf("observer sealed: %v", err)
	}
}

// sealOne writes one entry through the submission pipeline and returns
// the appended blocks (normal plus any due summary).
func sealOne(t *testing.T, c *chain.Chain, e *block.Entry) []*block.Block {
	t.Helper()
	blocks, err := chain.SealBlocks(context.Background(), c, e)
	if err != nil {
		t.Fatalf("SealBlocks: %v", err)
	}
	return blocks
}

func TestConfigureWiresEngineIntoChain(t *testing.T) {
	reg := identity.NewRegistry()
	kp := identity.Deterministic("alpha", "consensus-test")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := chain.Config{
		SequenceLength: 3,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	}
	Configure(&cfg, NewPoW(8))
	c, err := chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blocks := sealOne(t, c, block.NewData("alpha", []byte("x")).Sign(kp))
	if got := leadingZeroBits(blocks[0].Hash()); got < 8 {
		t.Errorf("committed block not mined: %d bits", got)
	}
	if blocks[1].Header.Nonce != 0 {
		t.Error("summary block was mined (must be computed, not sealed)")
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Error(err)
	}
}

func TestEngineIndependenceSameSummaries(t *testing.T) {
	// §V-B.3: the extension is independent of the consensus algorithm.
	// Chains driven by different engines see identical summary content
	// apart from the sealed normal-block hashes.
	reg := identity.NewRegistry()
	kp := identity.Deterministic("alpha", "consensus-test")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	engines := []Engine{NoOp{}, NewPoW(4)}
	var carriedCounts [][]int
	for _, e := range engines {
		cfg := chain.Config{
			SequenceLength: 3,
			MaxSequences:   1,
			Shrink:         chain.ShrinkMinimal,
			Registry:       reg,
			Clock:          simclock.NewLogical(0),
		}
		Configure(&cfg, e)
		c, err := chain.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var counts []int
		for i := 0; i < 8; i++ {
			entry := block.NewData("alpha", []byte(fmt.Sprintf("p%d", i))).Sign(kp)
			blocks := sealOne(t, c, entry)
			if len(blocks) == 2 {
				counts = append(counts, len(blocks[1].Carried))
			}
		}
		carriedCounts = append(carriedCounts, counts)
	}
	if len(carriedCounts[0]) != len(carriedCounts[1]) {
		t.Fatalf("summary counts differ: %v vs %v", carriedCounts[0], carriedCounts[1])
	}
	for i := range carriedCounts[0] {
		if carriedCounts[0][i] != carriedCounts[1][i] {
			t.Errorf("summary %d carried %d vs %d entries across engines",
				i, carriedCounts[0][i], carriedCounts[1][i])
		}
	}
}

func TestQuorumMajority(t *testing.T) {
	q, err := NewQuorum([]string{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != 5 || q.Threshold() != 3 {
		t.Fatalf("Size=%d Threshold=%d", q.Size(), q.Threshold())
	}
	tally := q.NewTally()
	for _, m := range []string{"a", "b"} {
		if err := tally.Add(m, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, decided := tally.Outcome(); decided {
		t.Error("decided with 2/5 votes")
	}
	if err := tally.Add("c", true); err != nil {
		t.Fatal(err)
	}
	approved, decided := tally.Outcome()
	if !decided || !approved {
		t.Errorf("Outcome = %v,%v after 3 yes votes", approved, decided)
	}
}

func TestQuorumRejection(t *testing.T) {
	q, err := NewQuorum([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	tally := q.NewTally()
	if err := tally.Add("a", false); err != nil {
		t.Fatal(err)
	}
	if _, decided := tally.Outcome(); decided {
		t.Error("decided after one no vote of three")
	}
	if err := tally.Add("b", false); err != nil {
		t.Fatal(err)
	}
	approved, decided := tally.Outcome()
	if !decided || approved {
		t.Errorf("Outcome = %v,%v after majority no", approved, decided)
	}
}

func TestQuorumVoteValidation(t *testing.T) {
	q, err := NewQuorum([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	tally := q.NewTally()
	if err := tally.Add("stranger", true); !errors.Is(err, ErrNotMember) {
		t.Errorf("err = %v, want ErrNotMember", err)
	}
	if err := tally.Add("a", true); err != nil {
		t.Fatal(err)
	}
	if err := tally.Add("a", false); !errors.Is(err, ErrDoubleVote) {
		t.Errorf("err = %v, want ErrDoubleVote", err)
	}
	yes, no := tally.Votes()
	if yes != 1 || no != 0 {
		t.Errorf("Votes = %d,%d", yes, no)
	}
}

func TestQuorumDeduplicatesMembers(t *testing.T) {
	q, err := NewQuorum([]string{"b", "a", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != 2 {
		t.Errorf("Size = %d, want 2", q.Size())
	}
	members := q.Members()
	if members[0] != "a" || members[1] != "b" {
		t.Errorf("Members = %v", members)
	}
	if _, err := NewQuorum(nil); !errors.Is(err, ErrEmptyQuorum) {
		t.Errorf("empty quorum: %v", err)
	}
}

func TestQuorumSingleMember(t *testing.T) {
	q, err := NewQuorum([]string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Threshold() != 1 {
		t.Errorf("Threshold = %d", q.Threshold())
	}
	tally := q.NewTally()
	if err := tally.Add("solo", true); err != nil {
		t.Fatal(err)
	}
	approved, decided := tally.Outcome()
	if !approved || !decided {
		t.Error("single-member quorum did not decide")
	}
}
