package consensus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// This file implements the majority-vote primitive of §IV-C: "the quorum
// build a consensus about redefining the Genesis Block … By a majority
// vote, the quorum determines the new first Block and the time of the
// changeover." The same primitive backs deletion-request approval by the
// anchor nodes (§IV-D.1).

// Errors returned by quorum tallies.
var (
	ErrNotMember   = errors.New("consensus: voter is not a quorum member")
	ErrDoubleVote  = errors.New("consensus: member already voted")
	ErrEmptyQuorum = errors.New("consensus: quorum has no members")
)

// Quorum is a fixed set of anchor-node identities with majority rule.
type Quorum struct {
	members map[string]bool
	ordered []string
}

// NewQuorum creates a quorum over the given member names (deduplicated).
func NewQuorum(members []string) (*Quorum, error) {
	if len(members) == 0 {
		return nil, ErrEmptyQuorum
	}
	q := &Quorum{members: make(map[string]bool, len(members))}
	for _, m := range members {
		if !q.members[m] {
			q.members[m] = true
			q.ordered = append(q.ordered, m)
		}
	}
	sort.Strings(q.ordered)
	return q, nil
}

// Members returns the sorted member names.
func (q *Quorum) Members() []string {
	out := make([]string, len(q.ordered))
	copy(out, q.ordered)
	return out
}

// Size returns the number of members.
func (q *Quorum) Size() int { return len(q.ordered) }

// Threshold returns the strict majority: floor(n/2)+1.
func (q *Quorum) Threshold() int { return len(q.ordered)/2 + 1 }

// Contains reports membership.
func (q *Quorum) Contains(name string) bool { return q.members[name] }

// Tally collects votes on one proposal (identified by the caller, e.g.
// "shift marker to block 6 at summary 8"). Safe for concurrent use.
type Tally struct {
	mu      sync.Mutex
	quorum  *Quorum
	yes, no int
	voted   map[string]bool
}

// NewTally starts an empty tally for the quorum.
func (q *Quorum) NewTally() *Tally {
	return &Tally{quorum: q, voted: make(map[string]bool)}
}

// Add records one member's vote. Double votes and non-members fail.
func (t *Tally) Add(member string, approve bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.quorum.Contains(member) {
		return fmt.Errorf("%w: %q", ErrNotMember, member)
	}
	if t.voted[member] {
		return fmt.Errorf("%w: %q", ErrDoubleVote, member)
	}
	t.voted[member] = true
	if approve {
		t.yes++
	} else {
		t.no++
	}
	return nil
}

// Outcome reports the decision state: approved is meaningful only when
// decided is true. A proposal is approved once yes votes reach the
// threshold, and rejected once enough members voted no that approval has
// become impossible.
func (t *Tally) Outcome() (approved, decided bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	threshold := t.quorum.Threshold()
	switch {
	case t.yes >= threshold:
		return true, true
	case t.quorum.Size()-t.no < threshold:
		return false, true
	default:
		return false, false
	}
}

// Votes returns the current yes/no counts.
func (t *Tally) Votes() (yes, no int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.yes, t.no
}
