package consensus

import (
	"fmt"
	"math/bits"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
)

// PoW is a proof-of-work engine: a block is sealed when its header hash
// has at least Bits leading zero bits. Difficulty is deliberately small —
// the experiments need relative costs (E12), not Bitcoin-scale security.
type PoW struct {
	// Bits is the required number of leading zero bits (1..64 practical).
	Bits int
	// MaxIter caps the nonce search; 0 means search the full nonce space.
	MaxIter uint64
}

// NewPoW returns a proof-of-work engine with the given difficulty.
func NewPoW(difficultyBits int) *PoW {
	return &PoW{Bits: difficultyBits}
}

// Name implements Engine.
func (p *PoW) Name() string { return fmt.Sprintf("pow-%d", p.Bits) }

// leadingZeroBits counts the leading zero bits of h.
func leadingZeroBits(h codec.Hash) int {
	total := 0
	for i := 0; i < len(h); i += 8 {
		word := uint64(h[i])<<56 | uint64(h[i+1])<<48 | uint64(h[i+2])<<40 | uint64(h[i+3])<<32 |
			uint64(h[i+4])<<24 | uint64(h[i+5])<<16 | uint64(h[i+6])<<8 | uint64(h[i+7])
		z := bits.LeadingZeros64(word)
		total += z
		if z < 64 {
			break
		}
	}
	return total
}

// Seal implements Engine: iterate the nonce until the difficulty holds.
func (p *PoW) Seal(b *block.Block) error {
	limit := p.MaxIter
	if limit == 0 {
		limit = ^uint64(0)
	}
	header := b.Header
	for nonce := uint64(0); nonce < limit; nonce++ {
		header.Nonce = nonce
		if leadingZeroBits(header.Hash()) >= p.Bits {
			b.Header.Nonce = nonce
			return nil
		}
	}
	return fmt.Errorf("%w: after %d nonces at %d bits", ErrExhausted, limit, p.Bits)
}

// VerifySeal implements Engine.
func (p *PoW) VerifySeal(b *block.Block) error {
	if got := leadingZeroBits(b.Hash()); got < p.Bits {
		return fmt.Errorf("%w: %d leading zero bits, want %d", ErrSealInvalid, got, p.Bits)
	}
	return nil
}
