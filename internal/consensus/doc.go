// Package consensus provides pluggable block-sealing engines and the
// quorum-voting primitive used by anchor nodes.
//
// The paper's concept is explicitly "independent of the specific
// consensus algorithm" (§IV-A): the summary-block behaviour is an
// extension of whatever consensus is in place. This package demonstrates
// that independence with three interchangeable engines — proof-of-work,
// proof-of-authority, and a no-op engine for pure simulations — all
// driven through the identical chain extension. Summary blocks are never
// sealed by any engine: every node computes them locally (§IV-B).
package consensus
