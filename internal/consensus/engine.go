package consensus

import (
	"errors"
	"fmt"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
)

// Errors returned by engines.
var (
	ErrSealInvalid = errors.New("consensus: seal invalid")
	ErrExhausted   = errors.New("consensus: nonce space exhausted")
	ErrNotLeader   = errors.New("consensus: not the slot leader")
)

// Engine seals freshly built normal blocks and verifies seals on blocks
// received from peers.
type Engine interface {
	// Name identifies the engine in logs and experiment tables.
	Name() string
	// Seal finalizes a block in place (e.g. mines a nonce).
	Seal(b *block.Block) error
	// VerifySeal checks that a received block satisfies the engine's
	// sealing rule.
	VerifySeal(b *block.Block) error
}

// Configure wires an engine into a chain.Config, implementing the
// "extending consensus algorithm" step of §V-B.3: the summary-block
// machinery stays in the chain; the engine only touches normal blocks.
func Configure(cfg *chain.Config, e Engine) {
	cfg.Seal = e.Seal
	cfg.VerifySeal = e.VerifySeal
}

// NoOp is the null engine: blocks are valid as built. Used by the pure
// algorithm experiments where consensus cost is out of scope.
type NoOp struct{}

// Name implements Engine.
func (NoOp) Name() string { return "noop" }

// Seal implements Engine.
func (NoOp) Seal(*block.Block) error { return nil }

// VerifySeal implements Engine.
func (NoOp) VerifySeal(*block.Block) error { return nil }

// Authority is a proof-of-authority engine: block α may only be sealed by
// authority number α mod len(authorities) (round-robin). The engine
// records the authority index in the nonce field; authenticity of the
// proposer is enforced by the signed gossip envelope at the network
// layer (see internal/node).
type Authority struct {
	authorities []string
	self        string
	selfIndex   int
}

// NewAuthority creates a proof-of-authority engine for the given ordered
// authority set, sealing on behalf of self. Self must be an authority to
// seal; any instance can verify.
func NewAuthority(authorities []string, self string) (*Authority, error) {
	if len(authorities) == 0 {
		return nil, errors.New("consensus: empty authority set")
	}
	a := &Authority{
		authorities: append([]string(nil), authorities...),
		self:        self,
		selfIndex:   -1,
	}
	for i, name := range authorities {
		if name == self {
			a.selfIndex = i
		}
	}
	return a, nil
}

// Name implements Engine.
func (a *Authority) Name() string { return "poa" }

// LeaderOf returns the authority responsible for sealing block num.
func (a *Authority) LeaderOf(num uint64) string {
	return a.authorities[int(num%uint64(len(a.authorities)))]
}

// Seal implements Engine. It fails when self is not the slot leader.
func (a *Authority) Seal(b *block.Block) error {
	leaderIdx := int(b.Header.Number % uint64(len(a.authorities)))
	if a.selfIndex != leaderIdx {
		return fmt.Errorf("%w: block %d belongs to %q, not %q",
			ErrNotLeader, b.Header.Number, a.authorities[leaderIdx], a.self)
	}
	b.Header.Nonce = uint64(leaderIdx)
	return nil
}

// VerifySeal implements Engine.
func (a *Authority) VerifySeal(b *block.Block) error {
	want := b.Header.Number % uint64(len(a.authorities))
	if b.Header.Nonce != want {
		return fmt.Errorf("%w: block %d sealed by authority %d, slot belongs to %d",
			ErrSealInvalid, b.Header.Number, b.Header.Nonce, want)
	}
	return nil
}
