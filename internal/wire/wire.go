// Package wire defines the signed message formats exchanged between
// anchor nodes and clients: entry submission, block gossip, summary
// votes, status queries, and entry lookups with inclusion proofs.
package wire

import (
	"errors"
	"fmt"

	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/identity"
)

// Message kinds exchanged between nodes and clients.
const (
	// KindEntry carries a client-submitted entry to anchor nodes.
	KindEntry = "entry"
	// KindBlock gossips a sealed normal block.
	KindBlock = "block"
	// KindVote carries a quorum vote on the next summary block and
	// marker shift (§IV-C).
	KindVote = "vote"
	// KindStatusReq and KindStatusResp implement the client status-quo
	// query (anti-eclipse anchor, §V-B.4).
	KindStatusReq  = "status_req"
	KindStatusResp = "status_resp"
	// KindLookupReq and KindLookupResp resolve an entry reference with
	// an inclusion proof.
	KindLookupReq  = "lookup_req"
	KindLookupResp = "lookup_resp"
	// KindVoteEvidence relays another node's signed vote envelope
	// verbatim. A node that receives a summary vote whose hash disagrees
	// with its own forwards the envelope to the rest of the quorum; any
	// receiver holding two conflicting signed votes from the same sender
	// for the same round has proof of equivocation and excludes that
	// sender from its tallies. The body is the raw inner envelope, so
	// the original signature stays verifiable by everyone.
	KindVoteEvidence = "vote_evidence"
)

// ErrBadEnvelope is returned when an envelope fails decoding or
// signature verification.
var ErrBadEnvelope = errors.New("wire: bad message envelope")

const envelopeDomain = "seldel/envelope/v1"

// Envelope is a signed message body. Every inter-node message travels in
// one, so a node cannot impersonate another (the proof-of-authority
// engine relies on this for proposer authenticity).
type Envelope struct {
	Sender string
	Kind   string
	Body   []byte
	Sig    []byte
}

func envelopeSigningBytes(sender, kind string, body []byte) []byte {
	e := codec.NewEncoder(64 + len(body))
	e.String(envelopeDomain)
	e.String(sender)
	e.String(kind)
	e.Bytes(body)
	return e.Data()
}

// SealEnvelope signs body on behalf of key and encodes the envelope.
func SealEnvelope(key *identity.KeyPair, kind string, body []byte) []byte {
	sig := key.Sign(envelopeSigningBytes(key.Name(), kind, body))
	e := codec.NewEncoder(128 + len(body))
	e.String(key.Name())
	e.String(kind)
	e.Bytes(body)
	e.Bytes(sig)
	return e.Data()
}

// OpenEnvelope decodes and verifies an envelope against the registry.
// Body and Sig are views into raw (no copy): the transport hands off
// message buffers and never reuses them, and every payload decoder
// copies what it retains, so the envelope's fields stay valid for as
// long as raw does.
func OpenEnvelope(reg *identity.Registry, raw []byte) (Envelope, error) {
	d := codec.NewDecoder(raw)
	var env Envelope
	env.Sender = d.ReadString()
	env.Kind = d.ReadString()
	env.Body = d.View()
	env.Sig = d.View()
	if err := d.Finish(); err != nil {
		return env, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	if err := reg.Verify(env.Sender, envelopeSigningBytes(env.Sender, env.Kind, env.Body), env.Sig); err != nil {
		return env, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	return env, nil
}

// EncodeEnvelope re-encodes an opened envelope verbatim, byte-for-byte
// identical to the SealEnvelope output it was opened from. Used to relay
// a third party's signed message (vote evidence) without being able to
// re-sign it.
func EncodeEnvelope(env Envelope) []byte {
	e := codec.NewEncoder(128 + len(env.Body))
	e.String(env.Sender)
	e.String(env.Kind)
	e.Bytes(env.Body)
	e.Bytes(env.Sig)
	return e.Data()
}

// VotePayload is the body of a KindVote message.
type VotePayload struct {
	Number  uint64     // summary block number being voted on
	Hash    codec.Hash // locally computed summary hash
	Marker  uint64     // resulting Genesis marker
	Approve bool
	// Repair marks a unicast answer to another node's (re-)announcement.
	// Repair votes are counted but never answered, so vote repair cannot
	// loop even on lossy networks.
	Repair bool
}

// EncodeVote encodes a vote payload.
func EncodeVote(v VotePayload) []byte {
	e := codec.NewEncoder(64)
	e.Uint64(v.Number)
	e.Hash(v.Hash)
	e.Uint64(v.Marker)
	e.Bool(v.Approve)
	e.Bool(v.Repair)
	return e.Data()
}

// DecodeVote decodes a vote payload.
func DecodeVote(raw []byte) (VotePayload, error) {
	d := codec.NewDecoder(raw)
	var v VotePayload
	v.Number = d.Uint64()
	v.Hash = d.Hash()
	v.Marker = d.Uint64()
	v.Approve = d.Bool()
	v.Repair = d.Bool()
	if err := d.Finish(); err != nil {
		return v, fmt.Errorf("wire: decode vote: %w", err)
	}
	return v, nil
}

// StatusPayload is the body of a KindStatusResp message.
type StatusPayload struct {
	ReqID      uint64
	HeadNumber uint64
	HeadHash   codec.Hash
	Marker     uint64
	Forked     bool
}

func EncodeStatus(s StatusPayload) []byte {
	e := codec.NewEncoder(64)
	e.Uint64(s.ReqID)
	e.Uint64(s.HeadNumber)
	e.Hash(s.HeadHash)
	e.Uint64(s.Marker)
	e.Bool(s.Forked)
	return e.Data()
}

func DecodeStatus(raw []byte) (StatusPayload, error) {
	d := codec.NewDecoder(raw)
	var s StatusPayload
	s.ReqID = d.Uint64()
	s.HeadNumber = d.Uint64()
	s.HeadHash = d.Hash()
	s.Marker = d.Uint64()
	s.Forked = d.Bool()
	if err := d.Finish(); err != nil {
		return s, fmt.Errorf("wire: decode status: %w", err)
	}
	return s, nil
}

// LookupReqPayload is the body of a KindLookupReq message.
type LookupReqPayload struct {
	ReqID    uint64
	RefBlock uint64
	RefEntry uint32
}

func EncodeLookupReq(p LookupReqPayload) []byte {
	e := codec.NewEncoder(32)
	e.Uint64(p.ReqID)
	e.Uint64(p.RefBlock)
	e.Uint32(p.RefEntry)
	return e.Data()
}

func DecodeLookupReq(raw []byte) (LookupReqPayload, error) {
	d := codec.NewDecoder(raw)
	var p LookupReqPayload
	p.ReqID = d.Uint64()
	p.RefBlock = d.Uint64()
	p.RefEntry = d.Uint32()
	if err := d.Finish(); err != nil {
		return p, fmt.Errorf("wire: decode lookup request: %w", err)
	}
	return p, nil
}

// LookupRespPayload is the body of a KindLookupResp message. When Found,
// it carries the entry, the header of the block currently holding it,
// the index of the entry within that block, and a Merkle inclusion proof
// against the header's entries root.
type LookupRespPayload struct {
	ReqID       uint64
	Found       bool
	Entry       []byte // canonical entry encoding
	Carried     bool
	HolderBlock []byte   // canonical header encoding of the holding block
	LeafIndex   uint32   // index within Entries or Carried
	LeafCount   uint32   // total leaves in the holding block
	ProofSibs   [][]byte // Merkle proof siblings (32-byte hashes)
	LeafBytes   []byte   // exact leaf encoding proven (entry or carried entry)
}

func EncodeLookupResp(p LookupRespPayload) []byte {
	e := codec.NewEncoder(256)
	e.Uint64(p.ReqID)
	e.Bool(p.Found)
	e.Bytes(p.Entry)
	e.Bool(p.Carried)
	e.Bytes(p.HolderBlock)
	e.Uint32(p.LeafIndex)
	e.Uint32(p.LeafCount)
	e.Uint32(uint32(len(p.ProofSibs)))
	for _, s := range p.ProofSibs {
		e.Bytes(s)
	}
	e.Bytes(p.LeafBytes)
	return e.Data()
}

func DecodeLookupResp(raw []byte) (LookupRespPayload, error) {
	d := codec.NewDecoder(raw)
	var p LookupRespPayload
	p.ReqID = d.Uint64()
	p.Found = d.Bool()
	p.Entry = d.Bytes()
	p.Carried = d.Bool()
	p.HolderBlock = d.Bytes()
	p.LeafIndex = d.Uint32()
	p.LeafCount = d.Uint32()
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return p, fmt.Errorf("wire: decode lookup response: %w", err)
	}
	if n > 1<<16 {
		return p, fmt.Errorf("wire: lookup response proof too large: %d", n)
	}
	for i := uint32(0); i < n; i++ {
		p.ProofSibs = append(p.ProofSibs, d.Bytes())
	}
	p.LeafBytes = d.Bytes()
	if err := d.Finish(); err != nil {
		return p, fmt.Errorf("wire: decode lookup response: %w", err)
	}
	return p, nil
}

// Sync message kinds: catch-up for nodes that fell behind (e.g. after a
// partition heals, §V-B.4).
const (
	// KindSyncReq asks a peer for the blocks after the requester's head.
	KindSyncReq = "sync_req"
	// KindSyncResp carries the requested incremental suffix: blocks the
	// requester can append directly onto its current head.
	KindSyncResp = "sync_resp"
	// KindSnapshotResp answers a sync request whose continuation point
	// was already truncated away on the sender side: it carries the
	// sender's snapshot-anchored live chain — the Genesis marker, the
	// head at capture time, and every live block from the marker on —
	// and the requester adopts it wholesale as its new status quo (the
	// marker block "is a trusted anchor … already approved by the
	// anchor nodes", §IV-C).
	KindSnapshotResp = "snapshot_resp"
)

// SyncReqPayload is the body of a KindSyncReq message.
type SyncReqPayload struct {
	// HeadNumber is the requester's current head block number.
	HeadNumber uint64
}

// EncodeSyncReq encodes a sync request.
func EncodeSyncReq(p SyncReqPayload) []byte {
	e := codec.NewEncoder(8)
	e.Uint64(p.HeadNumber)
	return e.Data()
}

// DecodeSyncReq decodes a sync request.
func DecodeSyncReq(raw []byte) (SyncReqPayload, error) {
	d := codec.NewDecoder(raw)
	var p SyncReqPayload
	p.HeadNumber = d.Uint64()
	if err := d.Finish(); err != nil {
		return p, fmt.Errorf("wire: decode sync request: %w", err)
	}
	return p, nil
}

// SyncRespPayload is the body of a KindSyncResp message.
type SyncRespPayload struct {
	// Blocks are canonical block encodings in ascending order, directly
	// appendable onto the requester's head.
	Blocks [][]byte
	// ManifestSeq and ManifestMarker describe the sender's deletion
	// manifest head (zero when the sender never deleted anything): the
	// sequence number of its newest deletion record and the Genesis
	// marker that record established. The receiver checks the offered
	// blocks against its OWN manifest — a peer cannot talk a node into
	// resurrecting a range the node itself witnessed being deleted —
	// and uses the sender's head only for audit and diagnostics.
	ManifestSeq    uint64
	ManifestMarker uint64
}

// MaxSyncBlocks bounds an incremental sync response. Senders must not
// build payloads beyond it (the node skips the send); receivers reject
// larger ones on decode. Snapshot offers are not bound by it: they are
// chunked (MaxSnapshotChunkBlocks), so an arbitrarily long live chain
// ships as a stream of bounded messages.
const MaxSyncBlocks = 1 << 16

// MaxSnapshotChunkBlocks bounds one snapshot chunk. Both sides stage at
// most this many block encodings per message, which is what keeps the
// snapshot path's memory ceiling independent of the chain length.
const MaxSnapshotChunkBlocks = 512

// EncodeSyncResp encodes a sync response.
func EncodeSyncResp(p SyncRespPayload) []byte {
	e := codec.NewEncoder(256)
	e.Uint32(uint32(len(p.Blocks)))
	for _, b := range p.Blocks {
		e.Bytes(b)
	}
	e.Uint64(p.ManifestSeq)
	e.Uint64(p.ManifestMarker)
	return e.Data()
}

// DecodeSyncResp decodes a sync response. Blocks are views into raw:
// each is fed straight to block.DecodeBlock, which copies everything it
// retains, so the catch-up path decodes a whole batch without
// duplicating the payload bytes first.
func DecodeSyncResp(raw []byte) (SyncRespPayload, error) {
	d := codec.NewDecoder(raw)
	var p SyncRespPayload
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return p, fmt.Errorf("wire: decode sync response: %w", err)
	}
	if n > MaxSyncBlocks {
		return p, fmt.Errorf("wire: sync response too large: %d blocks", n)
	}
	for i := uint32(0); i < n; i++ {
		p.Blocks = append(p.Blocks, d.View())
	}
	p.ManifestSeq = d.Uint64()
	p.ManifestMarker = d.Uint64()
	if err := d.Finish(); err != nil {
		return p, fmt.Errorf("wire: decode sync response: %w", err)
	}
	return p, nil
}

// SnapshotPayload is the body of one KindSnapshotResp message: one
// chunk of the sender's snapshot-anchored status quo. An offer is a
// stream of chunks sharing an OfferID, each carrying a bounded,
// contiguous run of live block encodings; the receiver feeds them
// straight into the restore pipeline, so neither side ever materializes
// the whole live chain as wire bytes. A single-message offer is the
// degenerate stream {Chunk: 0, Last: true} — the original unchunked
// format with an offer header in front.
//
// The offer's Genesis marker is chunk 0's Marker: that is the value the
// receiver checks against its own resurrection floor before accepting
// anything (a snapshot anchored below the floor would resurrect blocks
// the receiver recorded as deleted, so it is rejected at chunk 0 and
// the rest of the stream is dropped unread).
type SnapshotPayload struct {
	// OfferID identifies the offer this chunk belongs to; the sender
	// picks a fresh value per offer so a receiver can discard stragglers
	// of an aborted stream.
	OfferID uint64
	// Chunk is this message's 0-based position in the offer. Chunks must
	// arrive in order (the transport preserves per-pair ordering); a gap
	// aborts the offer.
	Chunk uint32
	// Last marks the offer's final chunk; its Head is the offered head.
	Last bool
	// Marker is the number of Blocks[0]. On chunk 0 it is the sender's
	// Genesis marker; on later chunks it must be the previous chunk's
	// Head + 1.
	Marker uint64
	// Head is the number of Blocks[len(Blocks)-1].
	Head uint64
	// Blocks are canonical block encodings, ascending Marker..Head. At
	// most MaxSnapshotChunkBlocks per chunk.
	Blocks [][]byte
	// ManifestSeq and ManifestMarker describe the sender's deletion
	// manifest head (see SyncRespPayload). Repeated on every chunk so
	// each message is self-describing for audit.
	ManifestSeq    uint64
	ManifestMarker uint64
}

// EncodeSnapshot encodes one snapshot-offer chunk.
func EncodeSnapshot(p SnapshotPayload) []byte {
	e := codec.NewEncoder(256)
	e.Uint64(p.OfferID)
	e.Uint32(p.Chunk)
	e.Bool(p.Last)
	e.Uint64(p.Marker)
	e.Uint64(p.Head)
	e.Uint32(uint32(len(p.Blocks)))
	for _, b := range p.Blocks {
		e.Bytes(b)
	}
	e.Uint64(p.ManifestSeq)
	e.Uint64(p.ManifestMarker)
	return e.Data()
}

// DecodeSnapshot decodes one snapshot-offer chunk, checking the chunk's
// own invariants: a bounded, non-empty block run whose declared
// marker→head range matches the count (each block's number and linkage
// is authoritatively re-checked by the restore pipeline, and
// cross-chunk contiguity by the receiver's offer session).
func DecodeSnapshot(raw []byte) (SnapshotPayload, error) {
	d := codec.NewDecoder(raw)
	var p SnapshotPayload
	p.OfferID = d.Uint64()
	p.Chunk = d.Uint32()
	p.Last = d.Bool()
	p.Marker = d.Uint64()
	p.Head = d.Uint64()
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return p, fmt.Errorf("wire: decode snapshot: %w", err)
	}
	if n == 0 {
		return p, errors.New("wire: snapshot chunk carries no blocks")
	}
	if n > MaxSnapshotChunkBlocks {
		return p, fmt.Errorf("wire: snapshot chunk too large: %d blocks", n)
	}
	// Views, as in DecodeSyncResp: the restore pipeline decodes each
	// block immediately and never retains the raw bytes.
	for i := uint32(0); i < n; i++ {
		p.Blocks = append(p.Blocks, d.View())
	}
	p.ManifestSeq = d.Uint64()
	p.ManifestMarker = d.Uint64()
	if err := d.Finish(); err != nil {
		return p, fmt.Errorf("wire: decode snapshot: %w", err)
	}
	if p.Head < p.Marker || uint64(len(p.Blocks)) != p.Head-p.Marker+1 {
		return p, fmt.Errorf("wire: snapshot chunk range %d..%d does not match %d blocks", p.Marker, p.Head, len(p.Blocks))
	}
	return p, nil
}

// SnapshotChunkFollows validates that next legally extends an offer
// whose most recently accepted chunk is prev: same offer, consecutive
// chunk index, contiguous block range, and prev not already final. The
// receiver's offer session applies this to every non-opening chunk; a
// violation aborts the whole offer (never a partial adoption).
func SnapshotChunkFollows(prev, next SnapshotPayload) error {
	if prev.Last {
		return errors.New("wire: snapshot chunk after final chunk")
	}
	if next.OfferID != prev.OfferID {
		return fmt.Errorf("wire: snapshot chunk from offer %d interleaved into offer %d", next.OfferID, prev.OfferID)
	}
	if next.Chunk != prev.Chunk+1 {
		return fmt.Errorf("wire: snapshot chunk %d out of order (want %d)", next.Chunk, prev.Chunk+1)
	}
	if next.Marker != prev.Head+1 {
		return fmt.Errorf("wire: snapshot chunk starts at %d, offer continues at %d", next.Marker, prev.Head+1)
	}
	return nil
}
