package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/identity"
)

func testRegistry(t *testing.T) (*identity.Registry, *identity.KeyPair) {
	t.Helper()
	reg := identity.NewRegistry()
	kp := identity.Deterministic("node-1", "wire-test")
	if err := reg.RegisterKey(kp, identity.RoleMaster); err != nil {
		t.Fatal(err)
	}
	return reg, kp
}

func TestEnvelopeRoundTrip(t *testing.T) {
	reg, kp := testRegistry(t)
	body := []byte("payload bytes")
	raw := SealEnvelope(kp, KindBlock, body)
	env, err := OpenEnvelope(reg, raw)
	if err != nil {
		t.Fatalf("OpenEnvelope: %v", err)
	}
	if env.Sender != "node-1" || env.Kind != KindBlock || !bytes.Equal(env.Body, body) {
		t.Errorf("env = %+v", env)
	}
}

func TestEnvelopeRejectsTampering(t *testing.T) {
	reg, kp := testRegistry(t)
	raw := SealEnvelope(kp, KindVote, []byte("vote"))

	t.Run("garbage", func(t *testing.T) {
		if _, err := OpenEnvelope(reg, []byte{1, 2, 3}); !errors.Is(err, ErrBadEnvelope) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("flipped body byte", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)/2] ^= 0xFF
		if _, err := OpenEnvelope(reg, bad); !errors.Is(err, ErrBadEnvelope) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unknown sender", func(t *testing.T) {
		stranger := identity.Deterministic("stranger", "wire-test")
		raw := SealEnvelope(stranger, KindVote, []byte("vote"))
		if _, err := OpenEnvelope(reg, raw); !errors.Is(err, ErrBadEnvelope) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("kind swap breaks signature", func(t *testing.T) {
		// Re-encode the same body+sig under a different kind.
		env, err := OpenEnvelope(reg, raw)
		if err != nil {
			t.Fatal(err)
		}
		e := codec.NewEncoder(128)
		e.String(env.Sender)
		e.String(KindBlock) // was KindVote
		e.Bytes(env.Body)
		e.Bytes(env.Sig)
		if _, err := OpenEnvelope(reg, e.Data()); !errors.Is(err, ErrBadEnvelope) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestVotePayloadRoundTrip(t *testing.T) {
	v := VotePayload{Number: 8, Hash: codec.HashBytes([]byte("s")), Marker: 6, Approve: true}
	back, err := DecodeVote(EncodeVote(v))
	if err != nil {
		t.Fatal(err)
	}
	if back != v {
		t.Errorf("round trip %+v != %+v", back, v)
	}
	if _, err := DecodeVote([]byte{1}); err == nil {
		t.Error("garbage vote accepted")
	}
	if _, err := DecodeVote(append(EncodeVote(v), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestStatusPayloadRoundTrip(t *testing.T) {
	s := StatusPayload{ReqID: 7, HeadNumber: 42, HeadHash: codec.HashBytes([]byte("h")), Marker: 36, Forked: true}
	back, err := DecodeStatus(EncodeStatus(s))
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip %+v != %+v", back, s)
	}
	if _, err := DecodeStatus(nil); err == nil {
		t.Error("empty status accepted")
	}
}

func TestLookupPayloadsRoundTrip(t *testing.T) {
	req := LookupReqPayload{ReqID: 3, RefBlock: 9, RefEntry: 2}
	backReq, err := DecodeLookupReq(EncodeLookupReq(req))
	if err != nil {
		t.Fatal(err)
	}
	if backReq != req {
		t.Errorf("req round trip %+v", backReq)
	}

	resp := LookupRespPayload{
		ReqID:       3,
		Found:       true,
		Entry:       []byte("entry-bytes"),
		Carried:     true,
		HolderBlock: []byte("header-bytes"),
		LeafIndex:   1,
		LeafCount:   4,
		ProofSibs:   [][]byte{bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32)},
		LeafBytes:   []byte("leaf"),
	}
	backResp, err := DecodeLookupResp(EncodeLookupResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if backResp.ReqID != resp.ReqID || !backResp.Found || !backResp.Carried {
		t.Errorf("resp fields lost: %+v", backResp)
	}
	if len(backResp.ProofSibs) != 2 || !bytes.Equal(backResp.ProofSibs[1], resp.ProofSibs[1]) {
		t.Error("proof siblings lost")
	}
	if !bytes.Equal(backResp.LeafBytes, resp.LeafBytes) {
		t.Error("leaf bytes lost")
	}
	if _, err := DecodeLookupResp([]byte{9}); err == nil {
		t.Error("garbage response accepted")
	}
}

func TestLookupRespNotFound(t *testing.T) {
	resp := LookupRespPayload{ReqID: 5}
	back, err := DecodeLookupResp(EncodeLookupResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if back.Found {
		t.Error("not-found response decoded as found")
	}
}

func TestSyncPayloadsRoundTrip(t *testing.T) {
	req := SyncReqPayload{HeadNumber: 11}
	backReq, err := DecodeSyncReq(EncodeSyncReq(req))
	if err != nil {
		t.Fatal(err)
	}
	if backReq != req {
		t.Errorf("req round trip %+v", backReq)
	}

	resp := SyncRespPayload{Blocks: [][]byte{[]byte("b12"), []byte("b13")}}
	backResp, err := DecodeSyncResp(EncodeSyncResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if len(backResp.Blocks) != 2 || !bytes.Equal(backResp.Blocks[1], resp.Blocks[1]) {
		t.Errorf("resp blocks lost: %+v", backResp)
	}
	if _, err := DecodeSyncResp([]byte{1}); err == nil {
		t.Error("garbage sync response accepted")
	}
}

func TestSnapshotPayloadRoundTrip(t *testing.T) {
	p := SnapshotPayload{
		Marker: 6,
		Head:   8,
		Blocks: [][]byte{[]byte("b6"), []byte("b7"), []byte("b8")},
	}
	back, err := DecodeSnapshot(EncodeSnapshot(p))
	if err != nil {
		t.Fatal(err)
	}
	if back.Marker != 6 || back.Head != 8 || len(back.Blocks) != 3 {
		t.Errorf("round trip %+v", back)
	}
	if !bytes.Equal(back.Blocks[2], p.Blocks[2]) {
		t.Error("block bytes lost")
	}

	t.Run("range mismatch rejected", func(t *testing.T) {
		bad := SnapshotPayload{Marker: 6, Head: 9, Blocks: p.Blocks}
		if _, err := DecodeSnapshot(EncodeSnapshot(bad)); err == nil {
			t.Error("declared range 6..9 with 3 blocks accepted")
		}
	})
	t.Run("head below marker rejected", func(t *testing.T) {
		bad := SnapshotPayload{Marker: 9, Head: 6, Blocks: nil}
		if _, err := DecodeSnapshot(EncodeSnapshot(bad)); err == nil {
			t.Error("inverted range accepted")
		}
	})
	t.Run("garbage rejected", func(t *testing.T) {
		if _, err := DecodeSnapshot([]byte{3}); err == nil {
			t.Error("garbage snapshot accepted")
		}
	})
}

// Property: envelopes round-trip for arbitrary kinds and bodies.
func TestQuickEnvelopeRoundTrip(t *testing.T) {
	reg, kp := testRegistry(t)
	f := func(kind string, body []byte) bool {
		raw := SealEnvelope(kp, kind, body)
		env, err := OpenEnvelope(reg, raw)
		if err != nil {
			return false
		}
		return env.Kind == kind && bytes.Equal(env.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
