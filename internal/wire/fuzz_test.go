package wire

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz targets for the decode surface every network byte crosses: a
// malformed or adversarial payload must draw an error, never a panic or
// an unbounded allocation, and every accepted payload must survive an
// encode/decode round trip unchanged. Seed corpora (valid payloads plus
// canned corruptions) are checked in under testdata/fuzz/ and can be
// regenerated with:
//
//	SELDEL_GEN_FUZZ_CORPUS=1 go test ./internal/wire/ -run TestGenerateFuzzCorpora

// fuzzMutations derives deterministic corruptions from a valid payload:
// a truncation, a flipped byte, trailing garbage, and degenerate inputs.
func fuzzMutations(valid []byte) [][]byte {
	out := [][]byte{valid}
	if len(valid) > 2 {
		out = append(out, valid[:len(valid)/2])
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0xff
		out = append(out, flipped)
		out = append(out, append(append([]byte(nil), valid...), 0xde, 0xad))
	}
	out = append(out, []byte{}, bytes.Repeat([]byte{0xff}, 16))
	return out
}

func syncRespSeeds() [][]byte {
	valid := EncodeSyncResp(SyncRespPayload{
		Blocks:         [][]byte{[]byte("block-one"), []byte("block-two")},
		ManifestSeq:    7,
		ManifestMarker: 42,
	})
	seeds := fuzzMutations(valid)
	seeds = append(seeds, EncodeSyncResp(SyncRespPayload{}))
	// A count prefix far beyond MaxSyncBlocks with no data behind it.
	seeds = append(seeds, []byte{0xff, 0xff, 0xff, 0x7f})
	return seeds
}

func snapshotSeeds() [][]byte {
	valid := EncodeSnapshot(SnapshotPayload{
		OfferID:        5,
		Chunk:          0,
		Last:           true,
		Marker:         3,
		Head:           4,
		Blocks:         [][]byte{[]byte("marker-block"), []byte("head-block")},
		ManifestSeq:    2,
		ManifestMarker: 3,
	})
	seeds := fuzzMutations(valid)
	// Range/count mismatch: declared head does not cover the blocks.
	seeds = append(seeds, EncodeSnapshot(SnapshotPayload{
		OfferID: 5, Last: true, Marker: 9, Head: 2, Blocks: [][]byte{[]byte("x")},
	}))
	// A non-final middle chunk of a multi-chunk stream.
	seeds = append(seeds, EncodeSnapshot(SnapshotPayload{
		OfferID: 5, Chunk: 2, Marker: 10, Head: 11,
		Blocks: [][]byte{[]byte("a"), []byte("b")},
	}))
	return seeds
}

// offerChunkPrev is the fixed predecessor chunk that
// FuzzSnapshotOfferValidation checks fuzzed chunks against.
func offerChunkPrev() SnapshotPayload {
	return SnapshotPayload{
		OfferID: 77,
		Chunk:   1,
		Marker:  4,
		Head:    6,
	}
}

func offerValidationSeeds() [][]byte {
	prev := offerChunkPrev()
	// The one successor the fixed prev accepts.
	follows := EncodeSnapshot(SnapshotPayload{
		OfferID: prev.OfferID,
		Chunk:   prev.Chunk + 1,
		Last:    true,
		Marker:  prev.Head + 1,
		Head:    prev.Head + 2,
		Blocks:  [][]byte{[]byte("c7"), []byte("c8")},
	})
	seeds := fuzzMutations(follows)
	// Cross-offer interleave: right position, wrong stream.
	seeds = append(seeds, EncodeSnapshot(SnapshotPayload{
		OfferID: prev.OfferID + 1, Chunk: prev.Chunk + 1, Last: true,
		Marker: prev.Head + 1, Head: prev.Head + 1, Blocks: [][]byte{[]byte("x")},
	}))
	// Skipped chunk index.
	seeds = append(seeds, EncodeSnapshot(SnapshotPayload{
		OfferID: prev.OfferID, Chunk: prev.Chunk + 2, Last: true,
		Marker: prev.Head + 1, Head: prev.Head + 1, Blocks: [][]byte{[]byte("x")},
	}))
	// Gap in the block range.
	seeds = append(seeds, EncodeSnapshot(SnapshotPayload{
		OfferID: prev.OfferID, Chunk: prev.Chunk + 1, Last: true,
		Marker: prev.Head + 3, Head: prev.Head + 3, Blocks: [][]byte{[]byte("x")},
	}))
	return seeds
}

func lookupRespSeeds() [][]byte {
	valid := EncodeLookupResp(LookupRespPayload{
		ReqID:       11,
		Found:       true,
		Entry:       []byte("entry-bytes"),
		HolderBlock: []byte("header-bytes"),
		LeafIndex:   1,
		LeafCount:   4,
		ProofSibs:   [][]byte{bytes.Repeat([]byte{0xaa}, 32), bytes.Repeat([]byte{0xbb}, 32)},
		LeafBytes:   []byte("leaf"),
	})
	seeds := fuzzMutations(valid)
	seeds = append(seeds, EncodeLookupResp(LookupRespPayload{ReqID: 1}))
	return seeds
}

func FuzzDecodeSyncResp(f *testing.F) {
	for _, s := range syncRespSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := DecodeSyncResp(raw)
		if err != nil {
			return
		}
		if len(p.Blocks) > MaxSyncBlocks {
			t.Fatalf("accepted %d blocks past the cap", len(p.Blocks))
		}
		rt, err := DecodeSyncResp(EncodeSyncResp(p))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(rt.Blocks) != len(p.Blocks) || rt.ManifestSeq != p.ManifestSeq || rt.ManifestMarker != p.ManifestMarker {
			t.Fatalf("round trip changed payload: %+v != %+v", rt, p)
		}
		for i := range p.Blocks {
			if !bytes.Equal(rt.Blocks[i], p.Blocks[i]) {
				t.Fatalf("round trip changed block %d", i)
			}
		}
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	for _, s := range snapshotSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := DecodeSnapshot(raw)
		if err != nil {
			return
		}
		// Accepted snapshots always satisfy the declared-range invariant.
		if p.Head < p.Marker || uint64(len(p.Blocks)) != p.Head-p.Marker+1 {
			t.Fatalf("accepted inconsistent range %d..%d with %d blocks", p.Marker, p.Head, len(p.Blocks))
		}
		rt, err := DecodeSnapshot(EncodeSnapshot(p))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if rt.OfferID != p.OfferID || rt.Chunk != p.Chunk || rt.Last != p.Last ||
			rt.Marker != p.Marker || rt.Head != p.Head || rt.ManifestSeq != p.ManifestSeq ||
			rt.ManifestMarker != p.ManifestMarker || len(rt.Blocks) != len(p.Blocks) {
			t.Fatalf("round trip changed payload: %+v != %+v", rt, p)
		}
	})
}

// FuzzSnapshotOfferValidation drives the chunk-continuity gate a node
// applies to every snapshot chunk after the first: a fuzzed chunk must
// either be rejected by decode, rejected by SnapshotChunkFollows, or
// satisfy the full successor contract against the fixed previous chunk.
func FuzzSnapshotOfferValidation(f *testing.F) {
	for _, s := range offerValidationSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := DecodeSnapshot(raw)
		if err != nil {
			return
		}
		prev := offerChunkPrev()
		if err := SnapshotChunkFollows(prev, p); err != nil {
			return
		}
		// Accepted as a successor: every continuity invariant must hold.
		if p.OfferID != prev.OfferID {
			t.Fatalf("accepted chunk from offer %d as successor of offer %d", p.OfferID, prev.OfferID)
		}
		if p.Chunk != prev.Chunk+1 {
			t.Fatalf("accepted chunk index %d after %d", p.Chunk, prev.Chunk)
		}
		if p.Marker != prev.Head+1 {
			t.Fatalf("accepted range starting at %d after head %d", p.Marker, prev.Head)
		}
		// And a chunk marked final must never accept a successor.
		final := prev
		final.Last = true
		if err := SnapshotChunkFollows(final, p); err == nil {
			t.Fatal("accepted a successor to a final chunk")
		}
	})
}

func FuzzDecodeLookupResp(f *testing.F) {
	for _, s := range lookupRespSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := DecodeLookupResp(raw)
		if err != nil {
			return
		}
		rt, err := DecodeLookupResp(EncodeLookupResp(p))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if rt.ReqID != p.ReqID || rt.Found != p.Found || len(rt.ProofSibs) != len(p.ProofSibs) ||
			!bytes.Equal(rt.Entry, p.Entry) || !bytes.Equal(rt.LeafBytes, p.LeafBytes) {
			t.Fatalf("round trip changed payload: %+v != %+v", rt, p)
		}
	})
}

// TestGenerateFuzzCorpora rewrites the checked-in seed corpora. Guarded
// by an environment variable so a normal test run never touches them.
func TestGenerateFuzzCorpora(t *testing.T) {
	if os.Getenv("SELDEL_GEN_FUZZ_CORPUS") == "" {
		t.Skip("set SELDEL_GEN_FUZZ_CORPUS=1 to regenerate fuzz corpora")
	}
	for name, seeds := range map[string][][]byte{
		"FuzzDecodeSyncResp":          syncRespSeeds(),
		"FuzzDecodeSnapshot":          snapshotSeeds(),
		"FuzzDecodeLookupResp":        lookupRespSeeds(),
		"FuzzSnapshotOfferValidation": offerValidationSeeds(),
	} {
		writeFuzzCorpus(t, name, seeds)
	}
}

// writeFuzzCorpus stores seeds in the `go test fuzz v1` file format the
// fuzzer loads from testdata/fuzz/<target>/.
func writeFuzzCorpus(t *testing.T, target string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
