// Package attack quantifies the 51%-attack discussion of §V-B.1.
//
// Without summary-block redundancy, rewriting the newest summary block
// requires out-mining the honest network for a single block. With the
// Fig. 9 redundancy reference, every entry older than lβ/2 has at least
// lβ/2 confirmations, so the attacker "has to run the attack for at
// least lβ/2 number of blocks". This package provides the analytic
// catch-up probability (Nakamoto's race) and a Monte-Carlo simulator of
// the private-mining race, so the experiments (E5) can compare required
// rewrite depths.
package attack

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Errors returned by the simulator.
var ErrBadConfig = errors.New("attack: invalid configuration")

// CatchUpProbability is the classic gambler's-ruin bound from the
// Bitcoin paper: the probability that an attacker with mining-power
// fraction q ever catches up from z blocks behind. For q >= 0.5 the
// attacker eventually always succeeds.
func CatchUpProbability(q float64, z int) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 0.5 {
		return 1
	}
	if z <= 0 {
		return 1
	}
	return math.Pow(q/(1-q), float64(z))
}

// NakamotoSuccessProbability is the full formula from the Bitcoin paper
// (section 11): the probability that an attacker with power q rewrites a
// transaction buried under z confirmations, accounting for the Poisson-
// distributed progress the attacker makes while the honest chain grows
// by z blocks.
func NakamotoSuccessProbability(q float64, z int) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 0.5 {
		return 1
	}
	if z <= 0 {
		return 1
	}
	p := 1 - q
	lambda := float64(z) * (q / p)
	sum := 1.0
	poisson := math.Exp(-lambda)
	for k := 0; k <= z; k++ {
		if k > 0 {
			poisson *= lambda / float64(k)
		}
		sum -= poisson * (1 - math.Pow(q/p, float64(z-k)))
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// RequiredRewriteDepth returns how many blocks an attacker must rewrite
// to displace the oldest carried entry: one block on a conventional
// chain, at least lβ/2 with the Fig. 9 redundancy reference.
func RequiredRewriteDepth(liveLen int, redundancyRef bool) int {
	if !redundancyRef || liveLen < 2 {
		return 1
	}
	return liveLen / 2
}

// RaceConfig parameterizes the Monte-Carlo private-mining race.
type RaceConfig struct {
	// AttackerPower is the attacker's fraction q of total mining power.
	AttackerPower float64
	// Deficit is how many blocks behind the attacker starts (the rewrite
	// depth z).
	Deficit int
	// Trials is the number of independent races.
	Trials int
	// MaxSteps aborts a race as failed after this many blocks (bounds
	// runtime; races the attacker would win almost surely finish long
	// before a sensible cap).
	MaxSteps int
	// BailDeficit abandons a race as lost once the attacker falls this
	// many blocks behind (the win probability from there is negligible).
	// Defaults to 128.
	BailDeficit int
	// Seed drives the deterministic RNG.
	Seed int64
}

// RaceResult aggregates the Monte-Carlo outcome.
type RaceResult struct {
	// SuccessRate is the fraction of races the attacker won.
	SuccessRate float64
	// MeanStepsToWin is the average number of total blocks mined in the
	// winning races (0 when none were won).
	MeanStepsToWin float64
	Trials         int
}

// SimulateRace runs the private-mining race: each new block belongs to
// the attacker with probability q. The attacker starts Deficit blocks
// behind and wins upon catching up (reaching a tie, Nakamoto's "ever
// catch up from z blocks behind" convention, so results are directly
// comparable to CatchUpProbability).
func SimulateRace(cfg RaceConfig) (RaceResult, error) {
	if cfg.AttackerPower < 0 || cfg.AttackerPower >= 1 {
		return RaceResult{}, fmt.Errorf("%w: power %f", ErrBadConfig, cfg.AttackerPower)
	}
	if cfg.Deficit < 0 || cfg.Trials <= 0 {
		return RaceResult{}, fmt.Errorf("%w: deficit %d trials %d", ErrBadConfig, cfg.Deficit, cfg.Trials)
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 1_000_000
	}
	if cfg.BailDeficit <= 0 {
		cfg.BailDeficit = 128
	}
	rng := rand.New(rand.NewSource(cfg.Seed)) //nolint:gosec // simulation, not crypto
	wins := 0
	var stepsInWins uint64
	for trial := 0; trial < cfg.Trials; trial++ {
		// lead = attacker chain length - honest chain length.
		lead := -cfg.Deficit
		bail := -cfg.Deficit - cfg.BailDeficit
		steps := 0
		for lead < 0 && lead > bail && steps < cfg.MaxSteps {
			if rng.Float64() < cfg.AttackerPower {
				lead++
			} else {
				lead--
			}
			steps++
		}
		if lead >= 0 {
			wins++
			stepsInWins += uint64(steps)
		}
	}
	res := RaceResult{
		SuccessRate: float64(wins) / float64(cfg.Trials),
		Trials:      cfg.Trials,
	}
	if wins > 0 {
		res.MeanStepsToWin = float64(stepsInWins) / float64(wins)
	}
	return res, nil
}

// DepthComparison is one row of the E5 table: attacker power q against
// the success probability at depth 1 (plain chain) and depth lβ/2
// (summary-block redundancy).
type DepthComparison struct {
	Power           float64
	PlainAnalytic   float64 // depth 1, gambler's ruin
	PlainSimulated  float64
	GuardedAnalytic float64 // depth lβ/2
	GuardedSim      float64
	GuardedDepth    int
}

// CompareDepths computes the E5 table for the given attacker powers and
// live chain length.
func CompareDepths(powers []float64, liveLen, trials int, seed int64) ([]DepthComparison, error) {
	guarded := RequiredRewriteDepth(liveLen, true)
	out := make([]DepthComparison, 0, len(powers))
	for i, q := range powers {
		plainSim, err := SimulateRace(RaceConfig{
			AttackerPower: q, Deficit: 1, Trials: trials, Seed: seed + int64(i)*2,
		})
		if err != nil {
			return nil, err
		}
		guardSim, err := SimulateRace(RaceConfig{
			AttackerPower: q, Deficit: guarded, Trials: trials, Seed: seed + int64(i)*2 + 1,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, DepthComparison{
			Power:           q,
			PlainAnalytic:   CatchUpProbability(q, 1),
			PlainSimulated:  plainSim.SuccessRate,
			GuardedAnalytic: CatchUpProbability(q, guarded),
			GuardedSim:      guardSim.SuccessRate,
			GuardedDepth:    guarded,
		})
	}
	return out, nil
}
