package attack

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCatchUpProbabilityBounds(t *testing.T) {
	tests := []struct {
		q    float64
		z    int
		want float64
	}{
		{0, 5, 0},
		{0.6, 5, 1}, // majority attacker always wins
		{0.5, 5, 1}, // exactly half: recurrent walk, eventual success
		{0.3, 0, 1}, // nothing to catch up
		{0.25, 1, 1.0 / 3.0},
	}
	for _, tt := range tests {
		got := CatchUpProbability(tt.q, tt.z)
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("CatchUpProbability(%v,%d) = %v, want %v", tt.q, tt.z, got, tt.want)
		}
	}
}

func TestCatchUpProbabilityDecaysWithDepth(t *testing.T) {
	q := 0.3
	prev := 1.1
	for z := 1; z <= 32; z *= 2 {
		p := CatchUpProbability(q, z)
		if p >= prev {
			t.Errorf("probability not decreasing at depth %d: %v >= %v", z, p, prev)
		}
		prev = p
	}
	// The Fig. 9 claim: rewriting lβ/2 blocks is exponentially harder
	// than rewriting one.
	if ratio := CatchUpProbability(q, 1) / CatchUpProbability(q, 12); ratio < 1e3 {
		t.Errorf("depth-12 protection factor only %v", ratio)
	}
}

func TestNakamotoFormula(t *testing.T) {
	// Spot values from the Bitcoin paper (section 11, q = 0.1):
	// z=0 → 1.0; z=5 → ~0.0009137; z=10 → ~0.0000012.
	if got := NakamotoSuccessProbability(0.1, 0); got != 1 {
		t.Errorf("z=0: %v", got)
	}
	if got := NakamotoSuccessProbability(0.1, 5); math.Abs(got-0.0009137) > 1e-4 {
		t.Errorf("q=0.1 z=5: %v, want ~0.0009137", got)
	}
	if got := NakamotoSuccessProbability(0.3, 10); math.Abs(got-0.0416605) > 1e-3 {
		t.Errorf("q=0.3 z=10: %v, want ~0.0417", got)
	}
	if got := NakamotoSuccessProbability(0.55, 3); got != 1 {
		t.Errorf("majority attacker: %v, want 1", got)
	}
}

func TestRequiredRewriteDepth(t *testing.T) {
	if RequiredRewriteDepth(24, false) != 1 {
		t.Error("plain chain depth != 1")
	}
	if got := RequiredRewriteDepth(24, true); got != 12 {
		t.Errorf("guarded depth = %d, want 12", got)
	}
	if RequiredRewriteDepth(1, true) != 1 {
		t.Error("tiny chain should need depth 1")
	}
}

func TestSimulateRaceMatchesAnalytic(t *testing.T) {
	// Monte Carlo within a few percent of the gambler's-ruin analytic.
	for _, tt := range []struct {
		q float64
		z int
	}{{0.2, 1}, {0.3, 2}, {0.4, 3}} {
		res, err := SimulateRace(RaceConfig{
			AttackerPower: tt.q, Deficit: tt.z, Trials: 20000, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := CatchUpProbability(tt.q, tt.z)
		if math.Abs(res.SuccessRate-want) > 0.02 {
			t.Errorf("q=%v z=%d: simulated %v, analytic %v", tt.q, tt.z, res.SuccessRate, want)
		}
	}
}

func TestSimulateRaceMajorityAlwaysWins(t *testing.T) {
	res, err := SimulateRace(RaceConfig{AttackerPower: 0.7, Deficit: 5, Trials: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate < 0.999 {
		t.Errorf("majority attacker success rate %v", res.SuccessRate)
	}
	if res.MeanStepsToWin <= 0 {
		t.Error("no steps recorded for wins")
	}
}

func TestSimulateRaceDeterministic(t *testing.T) {
	cfg := RaceConfig{AttackerPower: 0.35, Deficit: 4, Trials: 5000, Seed: 99}
	a, err := SimulateRace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different results")
	}
}

func TestSimulateRaceValidation(t *testing.T) {
	cases := []RaceConfig{
		{AttackerPower: -0.1, Deficit: 1, Trials: 10},
		{AttackerPower: 1.0, Deficit: 1, Trials: 10},
		{AttackerPower: 0.3, Deficit: -1, Trials: 10},
		{AttackerPower: 0.3, Deficit: 1, Trials: 0},
	}
	for i, cfg := range cases {
		if _, err := SimulateRace(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestCompareDepths(t *testing.T) {
	rows, err := CompareDepths([]float64{0.1, 0.3}, 24, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GuardedDepth != 12 {
			t.Errorf("guarded depth = %d", r.GuardedDepth)
		}
		// Redundancy must reduce success probability dramatically.
		if r.GuardedAnalytic >= r.PlainAnalytic {
			t.Errorf("q=%v: guarded %v >= plain %v", r.Power, r.GuardedAnalytic, r.PlainAnalytic)
		}
		if r.GuardedSim > r.PlainSimulated {
			t.Errorf("q=%v: simulated guarded %v > plain %v", r.Power, r.GuardedSim, r.PlainSimulated)
		}
	}
}

// Property: the analytic probability is monotone in q for fixed depth.
func TestQuickMonotoneInPower(t *testing.T) {
	f := func(a, b uint8) bool {
		qa := float64(a%50) / 100
		qb := float64(b%50) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return CatchUpProbability(qa, 6) <= CatchUpProbability(qb, 6)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestByzantineBehaviorContract(t *testing.T) {
	if !Honest.Valid() || !VoteWithholding.Valid() {
		t.Error("defined behaviours must be valid")
	}
	if Behavior(99).Valid() {
		t.Error("undefined behaviour accepted")
	}
	if Honest.String() != "honest" || VoteWithholding.String() != "vote-withholding" {
		t.Errorf("String() = %q / %q", Honest, VoteWithholding)
	}
	if got := Behavior(99).String(); got != "unknown" {
		t.Errorf("undefined String() = %q", got)
	}
}

func TestWithholdingTolerance(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {7, 3}, {15, 7},
	}
	for _, c := range cases {
		if got := WithholdingTolerance(c.n); got != c.want {
			t.Errorf("WithholdingTolerance(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
