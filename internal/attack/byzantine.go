package attack

// This file models Byzantine member behaviours for the anchor-node
// quorum (§IV-C): faults that are not mining races but protocol
// deviations by quorum members themselves. The simulator (internal/node)
// consumes Behavior to fault-inject a node; the analytic helpers bound
// what the majority rule tolerates.

// Behavior selects a Byzantine fault model for a simulated anchor node.
// The zero value is an honest node.
type Behavior uint8

const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// VoteWithholding is the silent Byzantine member: it computes
	// summary blocks locally (it must know the correct hash to follow
	// the quorum's decision) but never announces its vote and never
	// answers another member's announcement. Liveness survives while
	// the honest members alone still reach the majority threshold —
	// see WithholdingTolerance.
	VoteWithholding
	// Equivocation is the duplicitous proposer: for every summary round
	// it sends its honestly computed vote to one half of the quorum and
	// a conflicting hash to the other half, trying to split the members'
	// view of the agreed summary. Both votes are properly signed — the
	// deviation is saying different things to different peers, which is
	// exactly what honest nodes expose by relaying disagreeing votes as
	// evidence (wire.KindVoteEvidence).
	Equivocation
	// ForgedSnapshot is the stale-snapshot replayer: it votes and gossips
	// honestly, but answers every catch-up request with the first
	// snapshot it ever served, frozen before later deletions. A rejoining
	// node that accepted the replay would resurrect deleted blocks; the
	// receiver's resurrection-floor check is the defense.
	ForgedSnapshot
)

// Valid reports whether b is a defined behaviour.
func (b Behavior) Valid() bool { return b <= ForgedSnapshot }

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case VoteWithholding:
		return "vote-withholding"
	case Equivocation:
		return "equivocation"
	case ForgedSnapshot:
		return "forged-snapshot"
	default:
		return "unknown"
	}
}

// ReplaysStaleSnapshot reports whether b answers catch-up requests with
// a frozen pre-deletion snapshot instead of its current status quo.
func (b Behavior) ReplaysStaleSnapshot() bool { return b == ForgedSnapshot }

// WithholdingTolerance returns how many quorum members may silently
// withhold their votes before the marker-shift vote loses liveness: a
// quorum of n needs floor(n/2)+1 identical votes, so n - (floor(n/2)+1)
// members can go silent and summaries still apply. (One more and the
// chain freezes at the next summary slot — safety is never violated,
// the quorum just stops shifting the marker.)
func WithholdingTolerance(n int) int {
	if n <= 0 {
		return 0
	}
	return n - (n/2 + 1)
}
