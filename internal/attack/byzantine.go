package attack

// This file models Byzantine member behaviours for the anchor-node
// quorum (§IV-C): faults that are not mining races but protocol
// deviations by quorum members themselves. The simulator (internal/node)
// consumes Behavior to fault-inject a node; the analytic helpers bound
// what the majority rule tolerates.

// Behavior selects a Byzantine fault model for a simulated anchor node.
// The zero value is an honest node.
type Behavior uint8

const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// VoteWithholding is the silent Byzantine member: it computes
	// summary blocks locally (it must know the correct hash to follow
	// the quorum's decision) but never announces its vote and never
	// answers another member's announcement. Liveness survives while
	// the honest members alone still reach the majority threshold —
	// see WithholdingTolerance.
	VoteWithholding
)

// Valid reports whether b is a defined behaviour.
func (b Behavior) Valid() bool { return b <= VoteWithholding }

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case VoteWithholding:
		return "vote-withholding"
	default:
		return "unknown"
	}
}

// WithholdingTolerance returns how many quorum members may silently
// withhold their votes before the marker-shift vote loses liveness: a
// quorum of n needs floor(n/2)+1 identical votes, so n - (floor(n/2)+1)
// members can go silent and summaries still apply. (One more and the
// chain freezes at the next summary slot — safety is never violated,
// the quorum just stops shifting the marker.)
func WithholdingTolerance(n int) int {
	if n <= 0 {
		return 0
	}
	return n - (n/2 + 1)
}
