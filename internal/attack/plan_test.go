package attack

import (
	"reflect"
	"testing"

	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/wire"
)

// The plan tests pin the exact wire traffic every behaviour emits for a
// summary round: recipients, payloads, and whether the sender's own vote
// enters its local tally. A node executes these plans verbatim, so this
// is the per-behaviour contract the cluster drills build on.

func planVote() wire.VotePayload {
	var h codec.Hash
	for i := range h {
		h[i] = byte(i)
	}
	return wire.VotePayload{Number: 9, Hash: h, Marker: 6, Approve: true}
}

func TestPlanSummaryVotesPerBehavior(t *testing.T) {
	peers := []string{"a", "b", "c", "d"}
	v := planVote()
	lie := v
	lie.Hash = ConflictingHash(v.Hash)

	cases := []struct {
		name      string
		b         Behavior
		want      []VoteSend
		countSelf bool
	}{
		{
			name:      "honest broadcasts its vote",
			b:         Honest,
			want:      []VoteSend{{Peer: "", Payload: v}},
			countSelf: true,
		},
		{
			name:      "withholder stays silent",
			b:         VoteWithholding,
			want:      nil,
			countSelf: false,
		},
		{
			name: "equivocator splits the quorum",
			b:    Equivocation,
			want: []VoteSend{
				{Peer: "a", Payload: v},
				{Peer: "b", Payload: v},
				{Peer: "c", Payload: lie},
				{Peer: "d", Payload: lie},
			},
			countSelf: true,
		},
		{
			name:      "snapshot forger votes honestly",
			b:         ForgedSnapshot,
			want:      []VoteSend{{Peer: "", Payload: v}},
			countSelf: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sends, countSelf := PlanSummaryVotes(c.b, peers, v)
			if !reflect.DeepEqual(sends, c.want) {
				t.Errorf("PlanSummaryVotes(%v) = %+v, want %+v", c.b, sends, c.want)
			}
			if countSelf != c.countSelf {
				t.Errorf("countSelf = %v, want %v", countSelf, c.countSelf)
			}
		})
	}
}

func TestPlanSummaryVotesOddSplitFavorsTheLie(t *testing.T) {
	// With an odd peer count the equivocator tells the truth to the
	// smaller half: floor(n/2) truthful sends, the rest conflicting.
	v := planVote()
	sends, _ := PlanSummaryVotes(Equivocation, []string{"a", "b", "c"}, v)
	if len(sends) != 3 {
		t.Fatalf("got %d sends, want 3", len(sends))
	}
	truthful := 0
	for _, s := range sends {
		if s.Payload.Hash == v.Hash {
			truthful++
		} else if s.Payload.Hash != ConflictingHash(v.Hash) {
			t.Errorf("send to %s carries neither truth nor the planned lie", s.Peer)
		}
	}
	if truthful != 1 {
		t.Errorf("truthful sends = %d, want 1", truthful)
	}
}

func TestPlanSummaryVotesNoPeers(t *testing.T) {
	sends, countSelf := PlanSummaryVotes(Equivocation, nil, planVote())
	if len(sends) != 0 || !countSelf {
		t.Errorf("lone equivocator: sends=%v countSelf=%v", sends, countSelf)
	}
}

func TestConflictingHashProperties(t *testing.T) {
	h := planVote().Hash
	c := ConflictingHash(h)
	if c == h {
		t.Fatal("conflicting hash equals the honest hash")
	}
	if ConflictingHash(h) != c {
		t.Fatal("conflicting hash is not deterministic")
	}
	if ConflictingHash(c) != h {
		t.Fatal("complement involution broken")
	}
}

func TestExtendedBehaviorContract(t *testing.T) {
	for _, b := range []Behavior{Honest, VoteWithholding, Equivocation, ForgedSnapshot} {
		if !b.Valid() {
			t.Errorf("%v must be valid", b)
		}
	}
	if Behavior(99).Valid() {
		t.Error("undefined behaviour accepted")
	}
	if Equivocation.String() != "equivocation" || ForgedSnapshot.String() != "forged-snapshot" {
		t.Errorf("String() = %q / %q", Equivocation, ForgedSnapshot)
	}
	if Honest.ReplaysStaleSnapshot() || VoteWithholding.ReplaysStaleSnapshot() || Equivocation.ReplaysStaleSnapshot() {
		t.Error("only the snapshot forger replays stale snapshots")
	}
	if !ForgedSnapshot.ReplaysStaleSnapshot() {
		t.Error("snapshot forger must replay stale snapshots")
	}
}
