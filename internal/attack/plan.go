package attack

// This file plans the wire traffic a Byzantine behaviour emits, as pure
// data: the node executes the plan, tests assert it. Keeping the
// deviation logic here (instead of inlined in the node's send paths)
// means every behaviour's exact output is unit-testable without
// standing up a cluster.

import (
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/wire"
)

// VoteSend is one planned vote transmission for a summary round.
type VoteSend struct {
	// Peer is the recipient. Empty means broadcast to every endpoint
	// (the honest path, which also reaches non-member followers).
	Peer string
	// Payload is the vote to seal and send.
	Payload wire.VotePayload
}

// ConflictingHash derives the alternate summary hash an equivocator
// claims: the bitwise complement of the honest hash. Deterministic, so
// the equivocator tells every deceived peer the same consistent lie —
// the hardest variant to shrug off as corruption — and always distinct
// from the honest value.
func ConflictingHash(h codec.Hash) codec.Hash {
	var out codec.Hash
	for i := range h {
		out[i] = ^h[i]
	}
	return out
}

// PlanSummaryVotes returns the vote transmissions behaviour b emits for
// one summary round, given the quorum peers (excluding the sender, in a
// stable order) and the honestly computed vote. countSelf reports
// whether the sender still counts its own honest vote in its local
// tally (a withholder stays silent even toward itself, mirroring the
// original silent-member model).
//
//   - Honest and ForgedSnapshot broadcast the honest vote (a snapshot
//     forger deviates only on the sync path).
//   - VoteWithholding sends nothing.
//   - Equivocation unicasts the honest vote to the first half of peers
//     and a conflicting hash to the rest, splitting the quorum's view.
func PlanSummaryVotes(b Behavior, peers []string, v wire.VotePayload) (sends []VoteSend, countSelf bool) {
	switch b {
	case VoteWithholding:
		return nil, false
	case Equivocation:
		sends = make([]VoteSend, 0, len(peers))
		lie := v
		lie.Hash = ConflictingHash(v.Hash)
		half := len(peers) / 2
		for i, p := range peers {
			if i < half {
				sends = append(sends, VoteSend{Peer: p, Payload: v})
			} else {
				sends = append(sends, VoteSend{Peer: p, Payload: lie})
			}
		}
		return sends, true
	default:
		return []VoteSend{{Payload: v}}, true
	}
}
