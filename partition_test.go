package seldel

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// TestPartitionedFacade drives the partitioned chain end to end through
// the public API: WithPartitions routing, fan-out Submit, per-partition
// deletion, spine-verified proofs, the merged stats/tombstone views,
// the partitioned doctor, and restart from the per-partition stores.
func TestPartitionedFacade(t *testing.T) {
	reg := NewRegistry()
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	keys := map[string]*KeyPair{}
	for _, u := range users {
		kp := DeterministicKey(u, "partition-facade")
		if err := reg.RegisterKey(kp, RoleUser); err != nil {
			t.Fatal(err)
		}
		keys[u] = kp
	}
	root := filepath.Join(t.TempDir(), "store")
	open := func() *PartitionedChain {
		t.Helper()
		pc, err := NewPartitioned(reg,
			WithPartitions(4, WithPartitionKey(func(e *Entry) string { return e.Owner })),
			WithSequenceLength(3),
			WithMaxSequences(2),
			WithSegmentStore(root),
		)
		if err != nil {
			t.Fatal(err)
		}
		return pc
	}
	pc := open()
	ctx := context.Background()

	var entries []*Entry
	for _, u := range users {
		entries = append(entries, NewData(u, []byte("payload-"+u)).Sign(keys[u]))
	}
	sealed, err := pc.SubmitWait(ctx, entries...)
	if err != nil {
		t.Fatal(err)
	}
	victim := sealed[0].Ref
	if _, err := pc.SubmitWait(ctx, NewDeletion("alice", victim).Sign(keys["alice"])); err != nil {
		t.Fatal(err)
	}
	p := pc.Owner(victim)
	for i := 0; pc.Part(p).Marker() <= victim.Block; i++ {
		if i > 64 {
			t.Fatal("victim never truncated")
		}
		if _, err := pc.SubmitWait(ctx, NewData("alice", []byte(fmt.Sprintf("churn-%d", i))).Sign(keys["alice"])); err != nil {
			t.Fatal(err)
		}
		if err := pc.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	proof, err := pc.ProveDeleted(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Verify(); err != nil {
		t.Fatalf("spine proof: %v", err)
	}
	if stats := pc.Stats(); stats.ForgottenEntries == 0 {
		t.Error("merged stats show no forgotten entries")
	}
	if ps := pc.PipelineStats(); ps.Entries == 0 {
		t.Error("merged pipeline stats empty")
	}
	recs, err := pc.Tombstones(ctx)
	if err != nil || len(recs) == 0 {
		t.Fatalf("merged tombstones: %d, %v", len(recs), err)
	}
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}

	// The root is a partitioned store layout the doctor understands.
	if !IsPartitionedStoreRoot(root) {
		t.Fatal("root not detected as partitioned")
	}
	rep, err := DoctorPartitioned(root, DoctorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("doctor found issues on a clean shutdown")
	}
	if len(rep.Partitions) != 4 {
		t.Errorf("doctor saw %d partitions, want 4", len(rep.Partitions))
	}

	// Restart: proofs and integrity survive the round trip.
	pc2 := open()
	defer pc2.Close()
	proof2, err := pc2.ProveDeleted(ctx, victim)
	if err != nil {
		t.Fatalf("prove after restart: %v", err)
	}
	if err := proof2.Verify(); err != nil {
		t.Fatalf("verify after restart: %v", err)
	}
	if err := pc2.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionOptionGuards pins the façade-level misuse errors.
func TestPartitionOptionGuards(t *testing.T) {
	reg := NewRegistry()
	if _, err := New(reg, WithPartitions(2)); !errors.Is(err, ErrConfig) {
		t.Errorf("New accepted WithPartitions: %v", err)
	}
	if _, err := NewPartitioned(reg); !errors.Is(err, ErrConfig) {
		t.Errorf("NewPartitioned without WithPartitions: %v", err)
	}
	if _, err := NewPartitioned(reg, WithPartitions(2), WithStore(NewMemStore())); !errors.Is(err, ErrConfig) {
		t.Errorf("NewPartitioned accepted WithStore: %v", err)
	}
	if _, err := NewPartitioned(reg, WithPartitions(0)); !errors.Is(err, ErrConfig) {
		t.Errorf("zero partitions accepted: %v", err)
	}
}
