package seldel

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestWithSegmentStoreLifecycle exercises the public segment-store
// surface: WithSegmentStore mirrors a fresh chain, deletion shrinks the
// store, and reopening the same directory restores from the snapshot
// checkpoint (only the live suffix is replayed).
func TestWithSegmentStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	alice := DeterministicKey("alice", "segstore-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	opts := []Option{
		WithSequenceLength(3),
		WithMaxSequences(2),
		WithClock(NewLogicalClock(0)),
	}
	c, err := New(reg, append(opts, WithSegmentStore(dir, SegmentOptions{SegmentBytes: 2048}))...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		sealed, err := c.SubmitWait(ctx, NewData("alice", []byte(fmt.Sprintf("d-%02d", i))).Sign(alice))
		if err != nil {
			t.Fatal(err)
		}
		del, err := c.SubmitWait(ctx, NewDeletion("alice", sealed[0].Ref).Sign(alice))
		if err != nil {
			t.Fatal(err)
		}
		if del[0].Mark.String() != "approved" {
			t.Fatalf("deletion %d not approved: %v", i, del[0].Mark)
		}
	}
	if err := c.CompactWait(ctx); err != nil {
		t.Fatal(err)
	}
	marker := c.Marker()
	if marker == 0 {
		t.Fatal("chain never truncated")
	}
	headHash := c.HeadHash()
	live := c.Len()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same directory: the chain restores from the snapshot
	// checkpoint — marker, head, and only the live suffix replayed.
	c2, err := New(reg, append(opts, WithSegmentStore(dir, SegmentOptions{SegmentBytes: 2048}))...)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if c2.HeadHash() != headHash {
		t.Error("restored head hash differs")
	}
	if c2.Marker() != marker {
		t.Errorf("restored marker %d, want %d", c2.Marker(), marker)
	}
	if got := c2.Stats().AppendedBlocks; got != uint64(live) {
		t.Errorf("restore replayed %d blocks, want live suffix %d", got, live)
	}

	// The standalone handle also works against the same directory once
	// the chain is closed, exposing the snapshot to operators.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSegmentStore(dir, SegmentOptions{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap, ok, err := s.Snapshot()
	if err != nil || !ok {
		t.Fatalf("Snapshot: ok=%v err=%v", ok, err)
	}
	if snap.Marker != marker {
		t.Errorf("snapshot marker %d, want %d", snap.Marker, marker)
	}
}

// TestWithDurabilityGroup exercises the group-commit façade option:
// receipts resolve only after their blocks are fsynced, the chain
// survives reopen, and configurations that cannot honor the contract
// are rejected at construction.
func TestWithDurabilityGroup(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	alice := DeterministicKey("alice", "group-commit-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := New(reg,
		WithSequenceLength(3),
		WithClock(NewLogicalClock(0)),
		WithSegmentStore(dir, SegmentOptions{}),
		WithDurability(DurabilityGroup, 5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	headHash := c.HeadHash()
	for i := 0; i < 10; i++ {
		sealed, err := c.SubmitWait(ctx, NewData("alice", []byte(fmt.Sprintf("g-%02d", i))).Sign(alice))
		if err != nil {
			t.Fatal(err)
		}
		if sealed[0].Block == 0 {
			t.Fatalf("receipt %d resolved without a block number", i)
		}
		headHash = c.HeadHash()
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything a receipt acknowledged is on disk: the reopened chain
	// carries the same head.
	c2, err := New(reg,
		WithSequenceLength(3),
		WithClock(NewLogicalClock(0)),
		WithSegmentStore(dir, SegmentOptions{}),
	)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if c2.HeadHash() != headHash {
		t.Error("reopened head hash differs from last acknowledged head")
	}

	// Group commit needs a store that can fsync on demand: a memory-only
	// chain (no store at all) must be rejected, loudly, at construction.
	if _, err := New(reg, WithDurability(DurabilityGroup, 0)); !errors.Is(err, ErrConfig) {
		t.Fatalf("in-memory chain with group durability: err=%v, want ErrConfig", err)
	}
	// Invalid knobs fail regardless of the store.
	if _, err := New(reg, WithDurability(DurabilityMode(99), 0)); !errors.Is(err, ErrConfig) {
		t.Fatalf("bogus durability mode: err=%v, want ErrConfig", err)
	}
	if _, err := New(reg, WithDurability(DurabilityGroup, -time.Second)); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative group window: err=%v, want ErrConfig", err)
	}
}

// TestMigrateStore upgrades a FileStore directory to a SegmentStore
// through the public façade.
func TestMigrateStore(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("alice", "migrate-api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	fileDir := t.TempDir()
	fs, err := NewFileStore(fileDir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(reg,
		WithSequenceLength(3),
		WithMaxSequences(2),
		WithClock(NewLogicalClock(0)),
		WithStore(fs),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if _, err := c.SubmitWait(ctx, NewData("alice", []byte(fmt.Sprintf("m-%02d", i))).Sign(alice)); err != nil {
			t.Fatal(err)
		}
	}
	headHash := c.HeadHash()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	segDir := t.TempDir()
	dst, err := NewSegmentStore(segDir, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := MigrateStore(fs, dst); err != nil {
		t.Fatalf("MigrateStore: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := New(reg,
		WithSequenceLength(3),
		WithMaxSequences(2),
		WithClock(NewLogicalClock(0)),
		WithStore(dst),
	)
	if err != nil {
		t.Fatalf("open migrated store: %v", err)
	}
	defer c2.Close()
	if c2.HeadHash() != headHash {
		t.Error("migrated chain head hash differs")
	}
}
