module github.com/seldel/seldel

go 1.23
