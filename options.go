package seldel

import (
	"fmt"
	"io"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/partition"
	"github.com/seldel/seldel/internal/store"
	"github.com/seldel/seldel/internal/store/segment"
	"github.com/seldel/seldel/internal/verify"
)

// An Option configures a chain constructed by New.
type Option func(*builder) error

// builder accumulates the configuration assembled from options before
// the chain is constructed.
type builder struct {
	cfg       Config
	engine    Engine
	store     Store
	listeners []Listener
	// segDir/segOpts record a WithSegmentStore request; the store is
	// opened by b.open() so later options (WithoutDeletionManifest) can
	// still adjust segOpts regardless of option order.
	segDir      string
	segOpts     SegmentOptions
	manifestOff bool
	// durability records a WithDurability request; it is wired to the
	// resolved store's Sync in b.open(), after every option ran.
	durability chain.Durability
	// owned are resources opened by the builder itself (the deferred
	// WithSegmentStore open) rather than passed in by the caller: the
	// new chain adopts them (closed by Chain.Close), and New closes
	// them on a construction failure so no handle leaks.
	owned []io.Closer
	// partitions/partKey record a WithPartitions request, consumed by
	// NewPartitioned (New rejects it).
	partitions int
	partKey    func(*block.Entry) string
}

// closeOwned releases option-opened resources after a failed build.
func (b *builder) closeOwned() {
	for _, r := range b.owned {
		r.Close()
	}
	b.owned = nil
}

// New creates a selective-deletion chain for the given identity registry,
// configured by functional options. With no options the chain uses the
// paper's evaluation geometry (a summary block every 3rd block) with
// unbounded retention; add WithMaxSequences or WithMaxBlocks to bound the
// live chain and enable physical deletion.
//
//	chain, err := seldel.New(reg,
//		seldel.WithSequenceLength(3),
//		seldel.WithMaxSequences(2),
//		seldel.WithEngine(seldel.NewPoW(8)),
//		seldel.WithStore(fs),
//	)
//
// When a store is supplied and already holds blocks, the chain is
// restored from it; otherwise a fresh genesis is created and mirrored
// into the store. Call Close when done to drain the submission pipeline.
func New(reg *Registry, opts ...Option) (*Chain, error) {
	if reg == nil {
		return nil, fmt.Errorf("%w: registry is required", ErrConfig)
	}
	b := &builder{cfg: Config{SequenceLength: 3, Registry: reg}}
	for _, opt := range opts {
		if err := opt(b); err != nil {
			b.closeOwned()
			return nil, err
		}
	}
	if b.partitions > 0 {
		b.closeOwned()
		return nil, fmt.Errorf("%w: WithPartitions requires NewPartitioned", ErrConfig)
	}
	if b.engine != nil {
		consensus.Configure(&b.cfg, b.engine)
	}
	c, err := b.open()
	if err != nil {
		b.closeOwned()
		return nil, err
	}
	for _, l := range b.listeners {
		c.AddListener(l)
	}
	for _, r := range b.owned {
		c.Own(r)
	}
	return c, nil
}

// open constructs the chain, restoring from the store when it already
// holds blocks. A WithSegmentStore request is opened here — after every
// option ran — so store-shaping options compose in any order.
func (b *builder) open() (*Chain, error) {
	if b.segDir != "" {
		b.segOpts.DisableManifest = b.manifestOff
		s, err := segment.Open(b.segDir, b.segOpts)
		if err != nil {
			return nil, err
		}
		b.store = s
		b.owned = append(b.owned, s)
	} else if b.manifestOff {
		return nil, fmt.Errorf("%w: WithoutDeletionManifest requires WithSegmentStore", ErrConfig)
	}
	if b.durability.Mode == chain.DurabilityGroup {
		syncer, ok := b.store.(interface{ Sync() error })
		if !ok {
			return nil, fmt.Errorf("%w: WithDurability(DurabilityGroup) requires a store with Sync — use WithSegmentStore, or WithStore with a store that implements Sync() error", ErrConfig)
		}
		b.durability.Sync = syncer.Sync
		b.cfg.Durability = b.durability
	}
	if b.store == nil {
		return chain.New(b.cfg)
	}
	_, _, populated, err := b.store.Range()
	if err != nil {
		return nil, fmt.Errorf("seldel: probing store: %w", err)
	}
	if populated {
		c, _, err := store.OpenChain(b.cfg, b.store)
		return c, err
	}
	c, err := chain.New(b.cfg)
	if err != nil {
		return nil, err
	}
	if _, err := store.Attach(c, b.store); err != nil {
		return nil, err
	}
	return c, nil
}

// WithSequenceLength sets l, the distance between summary blocks
// (default 3, the paper's evaluation configuration). Must be ≥ 2.
func WithSequenceLength(l int) Option {
	return func(b *builder) error {
		b.cfg.SequenceLength = l
		return nil
	}
}

// WithMaxSequences bounds the live chain to at most n complete sequences
// (§IV-C); exceeding it merges the oldest sequences into a summary block
// and physically deletes the cut prefix.
func WithMaxSequences(n int) Option {
	return func(b *builder) error {
		b.cfg.MaxSequences = n
		return nil
	}
}

// WithMaxBlocks bounds the live chain to lmax blocks (Eq. 1).
func WithMaxBlocks(n int) Option {
	return func(b *builder) error {
		b.cfg.MaxBlocks = n
		return nil
	}
}

// WithMinBlocks sets a floor on live blocks that truncation never cuts
// below (§IV-D.3).
func WithMinBlocks(n int) Option {
	return func(b *builder) error {
		b.cfg.MinBlocks = n
		return nil
	}
}

// WithMinTimeSpan sets a floor on the logical time covered by live
// blocks (§IV-D.3).
func WithMinTimeSpan(span uint64) Option {
	return func(b *builder) error {
		b.cfg.MinTimeSpan = span
		return nil
	}
}

// WithShrink selects the sequence-merge policy (default
// ShrinkAllButNewest, the prototype behaviour of Figs. 6–8).
func WithShrink(p ShrinkPolicy) Option {
	return func(b *builder) error {
		b.cfg.Shrink = p
		return nil
	}
}

// WithRedundancyReference enables the Fig. 9 middle-sequence Merkle
// reference in summary blocks.
func WithRedundancyReference() Option {
	return func(b *builder) error {
		b.cfg.RedundancyReference = true
		return nil
	}
}

// WithClock supplies the chain's logical clock (default: a fresh Logical
// clock starting at 0). Experiments pass deterministic clocks; servers
// pass NewWallClock().
func WithClock(c Clock) Option {
	return func(b *builder) error {
		b.cfg.Clock = c
		return nil
	}
}

// WithDeletionPolicy selects requester-authorization strictness for
// deletion requests (default PolicyRoleBased, §IV-D.1).
func WithDeletionPolicy(p DeletionPolicy) Option {
	return func(b *builder) error {
		b.cfg.DeletionPolicy = p
		return nil
	}
}

// WithAutoCohesion enables the Bell-LaPadula-style automatic cohesion
// decision of §IV-D.2.
func WithAutoCohesion(p *AutoCohesionPolicy) Option {
	return func(b *builder) error {
		b.cfg.AutoCohesion = p
		return nil
	}
}

// WithEngine wires a consensus engine: it seals freshly built normal
// blocks and verifies seals on blocks received from peers.
func WithEngine(e Engine) Option {
	return func(b *builder) error {
		if e == nil {
			return fmt.Errorf("%w: nil engine", ErrConfig)
		}
		b.engine = e
		return nil
	}
}

// WithStore persists the chain into s: restored from it when non-empty,
// mirrored into it from genesis otherwise.
func WithStore(s Store) Option {
	return func(b *builder) error {
		if s == nil {
			return fmt.Errorf("%w: nil store", ErrConfig)
		}
		b.store = s
		return nil
	}
}

// WithSegmentStore persists the chain into a segment store rooted at
// dir, opening (or creating) it with the given options (pass none for
// the defaults: 1 MiB segments, fsync on roll/truncate/close). Like
// WithStore, a populated store restores the chain — starting at the
// snapshot checkpoint's Genesis marker, so only the live suffix is
// replayed — and an empty one is mirrored from genesis. Because the
// option opens the store itself, the chain owns it: Chain.Close syncs
// and closes it after the final compaction. Callers needing the handle
// (SizeBytes, Snapshot) should open it with NewSegmentStore and pass
// WithStore instead — then the handle, and its Close, stay theirs.
func WithSegmentStore(dir string, opts ...SegmentOptions) Option {
	return func(b *builder) error {
		if dir == "" {
			return fmt.Errorf("%w: empty segment store dir", ErrConfig)
		}
		if len(opts) > 1 {
			return fmt.Errorf("%w: at most one SegmentOptions", ErrConfig)
		}
		if len(opts) == 1 {
			b.segOpts = opts[0]
		}
		b.segDir = dir
		return nil
	}
}

// WithoutDeletionManifest disables the durable deletion manifest of a
// WithSegmentStore chain: truncations shift the marker without writing
// a DELETIONS audit record, so restarts cannot re-seed tombstones or
// the sync resurrection floor from disk. Only for callers that measure
// or explicitly do not want the audit trail; requires WithSegmentStore
// (callers opening their own segment store set
// SegmentOptions.DisableManifest instead).
func WithoutDeletionManifest() Option {
	return func(b *builder) error {
		b.manifestOff = true
		return nil
	}
}

// WithDurability selects when submission receipts resolve relative to
// the store's durability point. The default (DurabilitySeal) resolves a
// receipt at seal time, leaving durability to the store's own fsync
// policy. DurabilityGroup is group commit: receipts resolve only after
// their blocks reach stable storage, and all blocks sealed while one
// fsync is in flight share the next one — per-receipt durability at a
// small fraction of an fsync per block. window bounds how long the
// committer accumulates sealed blocks before forcing the sync (0 syncs
// as soon as the committer is free); it is an upper bound on the extra
// receipt latency group commit introduces.
//
// DurabilityGroup requires a store whose handle can force durability:
// WithSegmentStore, or WithStore with a store implementing
// `Sync() error`.
func WithDurability(mode DurabilityMode, window time.Duration) Option {
	return func(b *builder) error {
		if !mode.Valid() {
			return fmt.Errorf("%w: invalid durability mode %d", ErrConfig, mode)
		}
		if window < 0 {
			return fmt.Errorf("%w: negative durability window", ErrConfig)
		}
		b.durability = chain.Durability{Mode: mode, GroupWindow: window}
		return nil
	}
}

// WithListener registers a mutation observer on the new chain.
func WithListener(l Listener) Option {
	return func(b *builder) error {
		if l == nil {
			return fmt.Errorf("%w: nil listener", ErrConfig)
		}
		b.listeners = append(b.listeners, l)
		return nil
	}
}

// WithMaxBatch sets the submission pipeline's soft flush threshold: a
// Submit batch is sealed once it holds at least n entries (default 256).
func WithMaxBatch(n int) Option {
	return func(b *builder) error {
		b.cfg.MaxBatch = n
		return nil
	}
}

// WithBatchLinger lets the submission pipeline wait up to d for more
// entries before sealing a non-full batch. The default (0) is adaptive:
// idle streams seal immediately, but once concurrent producers coalesce,
// the pipeline lingers for about one observed flush latency so loaded
// chains stop sealing near-empty blocks.
func WithBatchLinger(d time.Duration) Option {
	return func(b *builder) error {
		b.cfg.BatchLinger = d
		return nil
	}
}

// WithCompaction parameterizes the background compactor that executes
// the physical side of truncation — cut-block memory release,
// dependency-graph sweeps, store pruning via OnTruncate — off the
// append path. The zero value is the asynchronous default; set
// Synchronous to run that work inline on the append path (deterministic
// single-threaded simulations that assert on store contents without a
// CompactWait barrier). Queue is a capacity hint for the pending-event
// staging buffer.
func WithCompaction(o CompactionOptions) Option {
	return func(b *builder) error {
		if o.Queue < 0 {
			return fmt.Errorf("%w: negative compaction queue", ErrConfig)
		}
		b.cfg.Compaction = o
		return nil
	}
}

// WithVerifier routes all signature verification of the new chain
// through p instead of the process-wide shared pool — e.g. a pool with
// a dedicated worker count, or with the verified-signature cache
// disabled for benchmarking.
func WithVerifier(p *Verifier) Option {
	return func(b *builder) error {
		if p == nil {
			return fmt.Errorf("%w: nil verifier", ErrConfig)
		}
		b.cfg.Verifier = p
		return nil
	}
}

// NewVerifier builds a standalone signature-verification pool. workers
// 0 means GOMAXPROCS; cacheSize 0 means the default verified-signature
// cache, negative disables caching.
func NewVerifier(workers, cacheSize int) *Verifier {
	return verify.New(verify.Options{Workers: workers, CacheSize: cacheSize})
}

// A PartitionOption tunes a WithPartitions request.
type PartitionOption func(*builder) error

// WithPartitionKey sets the partition-key extractor: entries with equal
// keys route to the same partition. The default keys by Entry.Owner,
// keeping one participant's data (and the deletion requests targeting
// it) on one partition.
func WithPartitionKey(fn func(*Entry) string) PartitionOption {
	return func(b *builder) error {
		if fn == nil {
			return fmt.Errorf("%w: nil partition key function", ErrConfig)
		}
		b.partKey = fn
		return nil
	}
}

// WithPartitions shards the chain's write path across n sub-chains
// behind a consistent-hash router, cross-linked by a spine chain (see
// PartitionedChain). Only NewPartitioned accepts it; New rejects it so
// a partitioned deployment cannot silently collapse to one chain.
//
//	pc, err := seldel.NewPartitioned(reg,
//		seldel.WithPartitions(4, seldel.WithPartitionKey(func(e *seldel.Entry) string { return e.Owner })),
//		seldel.WithMaxSequences(4),
//		seldel.WithSegmentStore(dir),
//	)
func WithPartitions(n int, popts ...PartitionOption) Option {
	return func(b *builder) error {
		if n < 1 {
			return fmt.Errorf("%w: partitions must be ≥ 1, got %d", ErrConfig, n)
		}
		b.partitions = n
		for _, po := range popts {
			if err := po(b); err != nil {
				return err
			}
		}
		return nil
	}
}

// NewPartitioned creates a partitioned selective-deletion chain: n
// sub-chains (WithPartitions is required), each running the full
// submission pipeline over its own block-number stripe, sharing one
// verify pool, and anchoring into a cross-partition spine chain.
// WithSegmentStore(dir) makes dir a partitioned store root holding one
// segment store per partition (dir/p000, dir/p001, ...) plus a
// PARTITIONS metadata file; populated partition stores are restored.
// WithStore is not supported — per-partition stores must be
// independent directories.
func NewPartitioned(reg *Registry, opts ...Option) (*PartitionedChain, error) {
	if reg == nil {
		return nil, fmt.Errorf("%w: registry is required", ErrConfig)
	}
	b := &builder{cfg: Config{SequenceLength: 3, Registry: reg}}
	for _, opt := range opts {
		if err := opt(b); err != nil {
			b.closeOwned()
			return nil, err
		}
	}
	if b.partitions == 0 {
		return nil, fmt.Errorf("%w: NewPartitioned requires WithPartitions", ErrConfig)
	}
	if b.store != nil {
		return nil, fmt.Errorf("%w: WithStore is not supported for partitioned chains; use WithSegmentStore with a root directory", ErrConfig)
	}
	if b.engine != nil {
		consensus.Configure(&b.cfg, b.engine)
	}
	if b.durability.Mode != 0 || b.durability.GroupWindow != 0 {
		// partition.New wires each partition store's Sync.
		b.cfg.Durability = b.durability
	}
	segOpts := b.segOpts
	segOpts.DisableManifest = b.manifestOff
	if b.manifestOff && b.segDir == "" {
		return nil, fmt.Errorf("%w: WithoutDeletionManifest requires WithSegmentStore", ErrConfig)
	}
	return partition.New(partition.Config{
		Partitions: b.partitions,
		Chain:      b.cfg,
		Key:        b.partKey,
		Dir:        b.segDir,
		Segment:    segOpts,
		Listeners:  b.listeners,
	})
}
