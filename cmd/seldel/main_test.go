package main

import "testing"

func TestRunScenario(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithExtraBlocks(t *testing.T) {
	if err := run([]string{"-blocks", "6"}); err != nil {
		t.Fatalf("run -blocks: %v", err)
	}
}

func TestRunCluster(t *testing.T) {
	if err := run([]string{"-cluster", "3"}); err != nil {
		t.Fatalf("run -cluster: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-wat"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
