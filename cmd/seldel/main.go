// Command seldel is an interactive demo of the selective-deletion
// blockchain: it replays the paper's §V logging scenario step by step,
// printing the chain in the console format of Figs. 6–8.
//
// Usage:
//
//	seldel                    # replay the paper scenario
//	seldel -blocks 30         # continue the workload for more cycles
//	seldel -cluster 4         # run the scenario through a 4-node cluster
//	seldel doctor -dir DIR    # cross-validate a store directory
//
// The doctor subcommand checks a persistent store directory's deletion
// manifest, snapshot checkpoint, marker file, and segment files against
// each other; -repair heals what the store's own recovery path can fix
// and hydrates a missing deletion record, -archive moves applied
// records to DELETIONS.archive.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/seldel/seldel"
	"github.com/seldel/seldel/internal/doctor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "seldel:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "doctor" {
		return runDoctor(args[1:])
	}
	fs := flag.NewFlagSet("seldel", flag.ContinueOnError)
	extra := fs.Int("blocks", 0, "extra filler blocks to append after the scenario")
	clusterSize := fs.Int("cluster", 0, "run through an n-node anchor cluster instead of a single chain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clusterSize > 0 {
		return runCluster(*clusterSize)
	}
	return runSingle(*extra)
}

// runDoctor cross-validates a store directory's durable deletion state.
// It exits non-zero (via the returned error) when issues remain after
// the run, so CI can gate on a clean report.
func runDoctor(args []string) error {
	fs := flag.NewFlagSet("seldel doctor", flag.ContinueOnError)
	dir := fs.String("dir", "", "store directory to examine (required)")
	repair := fs.Bool("repair", false, "complete interrupted truncations, heal torn tails, hydrate a missing deletion record")
	archive := fs.Bool("archive", false, "move applied deletion records to DELETIONS.archive (implies -repair)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("doctor: -dir is required")
	}
	opts := doctor.Options{Repair: *repair || *archive, Archive: *archive}
	// A partitioned store root (PARTITIONS metadata + p*/ stores) is
	// audited partition by partition automatically.
	if doctor.IsPartitionedRoot(*dir) {
		rep, err := doctor.RunPartitioned(*dir, opts)
		if err != nil {
			return err
		}
		if err := rep.Write(os.Stdout); err != nil {
			return err
		}
		if !rep.Clean() {
			return fmt.Errorf("doctor: %s has unresolved issues", *dir)
		}
		return nil
	}
	rep, err := doctor.Run(*dir, opts)
	if err != nil {
		return err
	}
	if err := rep.Write(os.Stdout); err != nil {
		return err
	}
	if !rep.Clean() {
		return fmt.Errorf("doctor: %s has unresolved issues", *dir)
	}
	return nil
}

// scenario drives the §V logging scenario on any entry sink.
type scenario struct {
	reg  *seldel.Registry
	keys map[string]*seldel.KeyPair
}

func newScenario() (*scenario, error) {
	s := &scenario{
		reg:  seldel.NewRegistry(),
		keys: make(map[string]*seldel.KeyPair),
	}
	for _, name := range []string{"ALPHA", "BRAVO", "CHARLIE"} {
		kp := seldel.DeterministicKey(name, "seldel-demo")
		if err := s.reg.RegisterKey(kp, seldel.RoleUser); err != nil {
			return nil, err
		}
		s.keys[name] = kp
	}
	return s, nil
}

func (s *scenario) login(user, terminal string) *seldel.Entry {
	payload := fmt.Sprintf("login %s %s ok", user, terminal)
	return seldel.NewData(user, []byte(payload)).Sign(s.keys[user])
}

func runSingle(extra int) error {
	s, err := newScenario()
	if err != nil {
		return err
	}
	chain, err := seldel.New(s.reg,
		seldel.WithSequenceLength(3),
		seldel.WithMaxSequences(2),
		seldel.WithShrink(seldel.ShrinkAllButNewest),
		seldel.WithClock(seldel.NewLogicalClock(0)),
	)
	if err != nil {
		return err
	}
	defer chain.Close()
	show := func(title string) {
		fmt.Printf("\n--- %s ---\n", title)
		_ = chain.Render(os.Stdout, &seldel.RenderOptions{ShowMarks: true})
	}

	// One SubmitWait per scenario step: the pipeline seals each step's
	// entries as one block, reproducing the figures exactly.
	ctx := context.Background()
	commit := func(entries ...*seldel.Entry) error {
		_, err := chain.SubmitWait(ctx, entries...)
		return err
	}
	if err := commit(s.login("ALPHA", "tty1")); err != nil {
		return err
	}
	if err := commit(s.login("ALPHA", "tty2"), s.login("BRAVO", "tty1")); err != nil {
		return err
	}
	if err := commit(s.login("CHARLIE", "tty1")); err != nil {
		return err
	}
	show("Fig. 6 — after three logins (summaries S2/S5 empty, nothing deleted)")

	del := seldel.NewDeletion("BRAVO", seldel.Ref{Block: 3, Entry: 1}).Sign(s.keys["BRAVO"])
	if err := commit(del); err != nil {
		return err
	}
	if err := commit(s.login("ALPHA", "tty3")); err != nil {
		return err
	}
	show("Fig. 7 — BRAVO's deletion executed; sequences 0+1 merged; marker -> 6")

	for i, pair := range [][2]string{{"ALPHA", "tty4"}, {"BRAVO", "tty2"}, {"CHARLIE", "tty2"}, {"ALPHA", "tty5"}} {
		if err := commit(s.login(pair[0], pair[1])); err != nil {
			return fmt.Errorf("cycle login %d: %w", i, err)
		}
	}
	show("Fig. 8 — one cycle ahead; the deletion request was never carried")

	for i := 0; i < extra; i++ {
		if _, err := chain.AppendEmpty(); err != nil {
			return err
		}
	}
	if extra > 0 {
		show(fmt.Sprintf("after %d extra filler blocks", extra))
	}
	st := chain.Stats()
	fmt.Printf("\nstats: appended=%d cut=%d live=%d forgotten=%d expired=%d rejected=%d\n",
		st.AppendedBlocks, st.CutBlocks, st.LiveBlocks,
		st.ForgottenEntries, st.ExpiredEntries, st.RejectedRequests)
	vs := chain.PipelineStats().Verify
	fmt.Printf("verify: workers=%d ed25519=%d cache-hits=%d misses=%d\n",
		vs.Workers, vs.Verified, vs.CacheHits, vs.CacheMisses)
	return nil
}

func runCluster(n int) error {
	s, err := newScenario()
	if err != nil {
		return err
	}
	net := seldel.NewNetwork(seldel.NetworkConfig{})
	defer net.Close()

	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("anchor-%d", i)
	}
	quorum, err := seldel.NewQuorum(names)
	if err != nil {
		return err
	}
	nodes := make([]*seldel.Node, n)
	for i, name := range names {
		kp := seldel.DeterministicKey(name, "seldel-demo")
		if err := s.reg.RegisterKey(kp, seldel.RoleMaster); err != nil {
			return err
		}
		nodes[i], err = seldel.NewNode(seldel.NodeConfig{
			Key: kp,
			Chain: seldel.Config{
				SequenceLength: 3,
				MaxSequences:   2,
				Shrink:         seldel.ShrinkAllButNewest,
				Registry:       s.reg,
				Clock:          seldel.NewLogicalClock(0),
			},
			Quorum:  quorum,
			Network: net,
		})
		if err != nil {
			return err
		}
	}
	step := func(entries ...*seldel.Entry) error {
		for _, e := range entries {
			nodes[0].SubmitLocal(e)
		}
		net.Flush()
		if _, err := nodes[0].Propose(); err != nil {
			return err
		}
		net.Flush()
		return nil
	}
	if err := step(s.login("ALPHA", "tty1")); err != nil {
		return err
	}
	if err := step(s.login("ALPHA", "tty2"), s.login("BRAVO", "tty1")); err != nil {
		return err
	}
	if err := step(s.login("CHARLIE", "tty1")); err != nil {
		return err
	}
	if err := step(seldel.NewDeletion("BRAVO", seldel.Ref{Block: 3, Entry: 1}).Sign(s.keys["BRAVO"])); err != nil {
		return err
	}
	if err := step(s.login("ALPHA", "tty3")); err != nil {
		return err
	}
	fmt.Printf("cluster of %d anchors after the Fig. 7 scenario:\n", n)
	for _, nd := range nodes {
		fmt.Printf("  %s: head=%d hash=%s marker=%d forked=%v\n",
			nd.Name(), nd.Chain().Head().Number, nd.Chain().HeadHash(),
			nd.Chain().Marker(), nd.Forked())
	}
	fmt.Println("\nchain as seen by", nodes[n-1].Name(), "(built its summaries locally):")
	return nodes[n-1].Chain().Render(os.Stdout, &seldel.RenderOptions{ShowMarks: true})
}
