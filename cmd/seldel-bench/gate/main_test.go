package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/seldel/seldel/internal/experiments"
)

func report(submit16, restoreSnap float64) *experiments.PipelineReport {
	r := &experiments.PipelineReport{}
	if submit16 > 0 {
		r.Results = append(r.Results, experiments.PipelineResult{
			API: "submit", Producers: 16, OpsPerSec: submit16,
		})
	}
	if restoreSnap > 0 {
		r.StorageResults = append(r.StorageResults, experiments.StorageResult{
			Op: "restore", Store: "segment", Detail: "snapshot", BlocksPerSec: restoreSnap,
		})
	}
	return r
}

func TestEvaluatePasses(t *testing.T) {
	base := report(10000, 50000)
	// 20% down on both metrics: inside the 30% allowance.
	if fails := evaluate(metrics, base, report(8000, 40000), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
	// Improvements obviously pass.
	if fails := evaluate(metrics, base, report(20000, 90000), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
}

func TestEvaluateFlagsRegression(t *testing.T) {
	base := report(10000, 50000)
	fails := evaluate(metrics, base, report(6000, 50000), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "submit@16") {
		t.Fatalf("want one submit@16 failure, got %v", fails)
	}
	fails = evaluate(metrics, base, report(10000, 30000), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "restore-from-snapshot") {
		t.Fatalf("want one restore failure, got %v", fails)
	}
}

func TestEvaluateMissingMetric(t *testing.T) {
	base := report(10000, 50000)
	// Candidate silently lost the storage dimension: that is a failure.
	fails := evaluate(metrics, base, report(10000, 0), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing from candidate") {
		t.Fatalf("want missing-metric failure, got %v", fails)
	}
	// Baseline without the dimension (pre-PR-4 file): skipped, not failed.
	if fails := evaluate(metrics, report(10000, 0), report(10000, 0), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures vs old baseline: %v", fails)
	}
}

func TestEvaluateManifestMetric(t *testing.T) {
	withProofs := func(proofs float64) *experiments.PipelineReport {
		r := report(10000, 50000)
		if proofs > 0 {
			r.ManifestResults = append(r.ManifestResults, experiments.ManifestResult{
				Op: "proofs", Manifest: true, RatePerSec: proofs,
			})
		}
		return r
	}
	base := withProofs(100000)
	if fails := evaluate(metrics, base, withProofs(80000), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
	fails := evaluate(metrics, base, withProofs(10000), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "tombstone proofs") {
		t.Fatalf("want one tombstone-proofs failure, got %v", fails)
	}
	// Candidate silently lost the manifest dimension: that is a failure.
	fails = evaluate(metrics, base, withProofs(0), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing from candidate") {
		t.Fatalf("want missing-metric failure, got %v", fails)
	}
	// Baseline without the dimension (pre-PR-6 file): skipped, not failed.
	if fails := evaluate(metrics, withProofs(0), withProofs(100000), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures vs old baseline: %v", fails)
	}
}

// TestEvaluateCostMetrics covers the lower-is-better guards: append
// allocs/entry and group-commit fsyncs/block regress UPWARD, so the
// gate must fail on increases and pass on decreases — the mirror image
// of the rate metrics.
func TestEvaluateCostMetrics(t *testing.T) {
	withCosts := func(allocs, groupFsyncs float64) *experiments.PipelineReport {
		r := report(10000, 50000)
		if allocs > 0 {
			r.HotPathResults = append(r.HotPathResults, experiments.HotPathResult{
				Op: "append-allocs", Mode: "pipelined", AllocsPerEntry: allocs,
			})
		}
		if groupFsyncs > 0 {
			r.HotPathResults = append(r.HotPathResults, experiments.HotPathResult{
				Op: "durability", Mode: "group", Producers: 16, FsyncsPerBlock: groupFsyncs,
			})
		}
		return r
	}
	base := withCosts(10, 0.2)
	// Costs dropping (improvement) and small increases inside the
	// allowance both pass.
	if fails := evaluate(metrics, base, withCosts(5, 0.1), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures on improvement: %v", fails)
	}
	if fails := evaluate(metrics, base, withCosts(12, 0.25), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures inside allowance: %v", fails)
	}
	// Allocations blowing past the ceiling is a regression.
	fails := evaluate(metrics, base, withCosts(20, 0.2), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/entry") {
		t.Fatalf("want one allocs/entry failure, got %v", fails)
	}
	// So is the group committer degenerating toward fsync-per-block.
	fails = evaluate(metrics, base, withCosts(10, 0.9), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "fsyncs/block") {
		t.Fatalf("want one fsyncs/block failure, got %v", fails)
	}
	// Candidate silently lost the hot-path dimension: both guards fire.
	fails = evaluate(metrics, base, withCosts(0, 0), 0.30)
	if len(fails) != 2 || !strings.Contains(fails[0], "missing from candidate") {
		t.Fatalf("want two missing-metric failures, got %v", fails)
	}
	// Baseline without the dimension (pre-PR-7 file): skipped.
	if fails := evaluate(metrics, withCosts(0, 0), withCosts(10, 0.2), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures vs old baseline: %v", fails)
	}
}

// TestEvaluatePartitionMetric covers the PR 8 rate guard: submission
// throughput at 4 partitions is baseline-relative like every other
// rate, with the same skip-vs-fail asymmetry on missing dimensions.
func TestEvaluatePartitionMetric(t *testing.T) {
	withParts := func(ops4 float64) *experiments.PipelineReport {
		r := report(10000, 50000)
		if ops4 > 0 {
			r.PartitionResults = append(r.PartitionResults, experiments.PartitionResult{
				Partitions: 4, Producers: 16, OpsPerSec: ops4,
			})
		}
		return r
	}
	base := withParts(40000)
	if fails := evaluate(metrics, base, withParts(35000), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
	fails := evaluate(metrics, base, withParts(10000), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "partitions submit@16") {
		t.Fatalf("want one partition-rate failure, got %v", fails)
	}
	// Candidate silently lost the partition dimension: failure.
	fails = evaluate(metrics, base, withParts(0), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing from candidate") {
		t.Fatalf("want missing-metric failure, got %v", fails)
	}
	// Baseline without the dimension (pre-PR-8 file): skipped, not failed.
	if fails := evaluate(metrics, withParts(0), withParts(40000), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures vs old baseline: %v", fails)
	}
}

// TestCheckPartitionScaling pins the candidate-only sharding floor:
// enforced on >= 4-CPU candidates, skipped (loudly, never failed) on
// narrow boxes or reports without the dimension.
func TestCheckPartitionScaling(t *testing.T) {
	cand := func(cpus int, scaling float64) *experiments.PipelineReport {
		return &experiments.PipelineReport{NumCPU: cpus, PartitionScaling4x: scaling}
	}
	if v := checkPartitionScaling(cand(8, 2.5), 2.0); len(v) != 0 {
		t.Errorf("scaling above floor flagged: %v", v)
	}
	v := checkPartitionScaling(cand(8, 1.2), 2.0)
	if len(v) != 1 || !strings.Contains(v[0], "partition scaling") {
		t.Errorf("want one scaling violation, got %v", v)
	}
	// Single-core candidate: 4-way sharding cannot help; skip, not fail.
	if v := checkPartitionScaling(cand(1, 0.9), 2.0); len(v) != 0 {
		t.Errorf("narrow-box candidate flagged: %v", v)
	}
	// No partition dimension at all: skip, not fail.
	if v := checkPartitionScaling(cand(8, 0), 2.0); len(v) != 0 {
		t.Errorf("dimensionless candidate flagged: %v", v)
	}
	// Floor disabled explicitly.
	if v := checkPartitionScaling(cand(8, 0.5), 0); len(v) != 0 {
		t.Errorf("disabled floor flagged: %v", v)
	}
}

func TestHardwareComparable(t *testing.T) {
	same := func() *experiments.PipelineReport {
		return &experiments.PipelineReport{GOOS: "linux", GOARCH: "amd64", NumCPU: 4}
	}
	if ok, _ := hardwareComparable(same(), same()); !ok {
		t.Error("identical hardware reported as incomparable")
	}
	other := same()
	other.NumCPU = 1
	if ok, why := hardwareComparable(same(), other); ok || why == "" {
		t.Errorf("num_cpu mismatch not flagged: ok=%v why=%q", ok, why)
	}
	osDiff := same()
	osDiff.GOOS = "darwin"
	if ok, _ := hardwareComparable(same(), osDiff); ok {
		t.Error("goos mismatch not flagged")
	}
}

// TestRunAdvisoryOnHardwareMismatch pins the end-to-end gating policy:
// a regression vs a different-hardware baseline warns but exits clean,
// while the same regression on matching hardware (or with -enforce)
// fails.
func TestRunAdvisoryOnHardwareMismatch(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r *experiments.PipelineReport) string {
		path := filepath.Join(dir, name)
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := report(10000, 50000)
	base.GOOS, base.GOARCH, base.NumCPU = "linux", "amd64", 1
	slow := report(3000, 50000)
	slow.GOOS, slow.GOARCH, slow.NumCPU = "linux", "amd64", 4
	basePath := write("base.json", base)
	slowPath := write("slow.json", slow)
	if err := run([]string{"-baseline", basePath, "-candidate", slowPath}); err != nil {
		t.Errorf("hardware-mismatched regression should be advisory, got %v", err)
	}
	if err := run([]string{"-baseline", basePath, "-candidate", slowPath, "-enforce"}); err == nil {
		t.Error("-enforce should fail the mismatched regression")
	}
	sameHW := report(3000, 50000)
	sameHW.GOOS, sameHW.GOARCH, sameHW.NumCPU = "linux", "amd64", 1
	samePath := write("same.json", sameHW)
	if err := run([]string{"-baseline", basePath, "-candidate", samePath}); err == nil {
		t.Error("matching-hardware regression should fail")
	}
}

// TestEvaluateLoadMetric covers the PR 9 serving guard: p99 append
// latency through the HTTP front-end is a lower-is-better cost, and
// -dimension load evaluates it alone so a seldel-load report is not
// penalized for lacking every other dimension.
func TestEvaluateLoadMetric(t *testing.T) {
	withP99 := func(p99 float64) *experiments.PipelineReport {
		r := &experiments.PipelineReport{}
		if p99 > 0 {
			r.SetLoadResults([]experiments.LoadResult{{Workload: "append", P99Micros: int64(p99)}})
		}
		return r
	}
	base := withP99(2000)
	if fails := evaluate(loadMetrics, base, withP99(2400), 0.30); len(fails) != 0 {
		t.Fatalf("p99 inside allowance flagged: %v", fails)
	}
	fails := evaluate(loadMetrics, base, withP99(5000), 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "serve append p99") {
		t.Fatalf("want one p99 failure, got %v", fails)
	}
	// -dimension load must not demand the other dimensions.
	if fails := evaluate(metricSets["load"], report(10000, 50000), withP99(2000), 0.30); len(fails) != 0 {
		t.Fatalf("load dimension demanded non-load metrics: %v", fails)
	}
	// Baseline without the dimension: skipped, not failed.
	if fails := evaluate(loadMetrics, withP99(0), withP99(2000), 0.30); len(fails) != 0 {
		t.Fatalf("unexpected failures vs old baseline: %v", fails)
	}
}

// TestCheckShedFraction pins the candidate-only shed ceiling.
func TestCheckShedFraction(t *testing.T) {
	cand := func(frac float64) *experiments.PipelineReport {
		return &experiments.PipelineReport{LoadResults: []experiments.LoadResult{
			{Workload: "append", ShedFraction: frac, Scheduled: 1000, Sheds: int64(frac * 1000)},
		}}
	}
	if v := checkShedFraction(cand(0.01), 0.05); len(v) != 0 {
		t.Errorf("sheds under ceiling flagged: %v", v)
	}
	v := checkShedFraction(cand(0.2), 0.05)
	if len(v) != 1 || !strings.Contains(v[0], "shed fraction") {
		t.Errorf("want one shed violation, got %v", v)
	}
	// No load dimension: skip, not fail.
	if v := checkShedFraction(&experiments.PipelineReport{}, 0.05); len(v) != 0 {
		t.Errorf("dimensionless candidate flagged: %v", v)
	}
	// Disabled.
	if v := checkShedFraction(cand(0.9), -1); len(v) != 0 {
		t.Errorf("disabled ceiling flagged: %v", v)
	}
}
