// Command gate is the CI bench-smoke regression gate: it compares a
// freshly measured `seldel-bench -json` report against the committed
// baseline and fails (exit 1) when a guarded throughput metric
// regressed by more than the allowed fraction.
//
// Guarded metrics are either rates (ops/sec, blocks/sec — lower is a
// regression) or costs (allocs per appended entry, fsyncs per block —
// HIGHER is a regression); both are stable under a smaller
// -json-entries than the baseline. Rate guards: submission throughput
// at 16 producers, segment-store restore-from-snapshot throughput,
// cluster-replicated block throughput at 3 nodes, tombstone-proof
// build+verify throughput. Cost guards: pipelined append allocs/entry
// and group-commit fsyncs/block at 16 producers.
//
// Usage:
//
//	gate -baseline BENCH_PR5.json -candidate bench-smoke.json -max-regress 0.30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/seldel/seldel/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ContinueOnError)
	basePath := fs.String("baseline", "", "committed baseline report (e.g. BENCH_PR4.json)")
	candPath := fs.String("candidate", "", "freshly measured report (e.g. bench-smoke.json)")
	maxRegress := fs.Float64("max-regress", 0.30, "maximum allowed fractional regression per metric")
	enforce := fs.Bool("enforce", false, "fail on regression even when the baseline was measured on different hardware")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *candPath == "" {
		return fmt.Errorf("both -baseline and -candidate are required")
	}
	base, err := readReport(*basePath)
	if err != nil {
		return err
	}
	cand, err := readReport(*candPath)
	if err != nil {
		return err
	}
	failures := evaluate(base, cand, *maxRegress)
	if len(failures) == 0 {
		fmt.Println("bench gate passed")
		return nil
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "REGRESSION:", f)
	}
	// Absolute rates only transfer between comparable machines. When
	// the baseline was recorded on a different hardware class, a hard
	// failure would be noise (and a pass would prove nothing), so the
	// gate reports the regressions as advisory and asks the operator to
	// recalibrate; -enforce overrides.
	if match, why := hardwareComparable(base, cand); !match && !*enforce {
		fmt.Fprintf(os.Stderr, "WARNING: baseline hardware differs from candidate (%s); "+
			"regressions above are ADVISORY — regenerate the baseline from this environment's "+
			"bench output (e.g. the CI bench-smoke artifact) to arm the gate, or pass -enforce\n", why)
		return nil
	}
	return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", len(failures), *maxRegress*100)
}

// hardwareComparable reports whether two reports came from the same
// hardware class — the precondition for comparing absolute rates.
func hardwareComparable(base, cand *experiments.PipelineReport) (bool, string) {
	if base.GOOS != cand.GOOS || base.GOARCH != cand.GOARCH {
		return false, fmt.Sprintf("baseline %s/%s vs candidate %s/%s", base.GOOS, base.GOARCH, cand.GOOS, cand.GOARCH)
	}
	if base.NumCPU != cand.NumCPU {
		return false, fmt.Sprintf("baseline num_cpu=%d vs candidate num_cpu=%d", base.NumCPU, cand.NumCPU)
	}
	return true, ""
}

func readReport(path string) (*experiments.PipelineReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r experiments.PipelineReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// metric extracts one guarded number from a report; ok is false when
// the report does not contain it (old baselines, partial runs). By
// default the number is a rate (lower candidate = regression); cost
// metrics set lowerIsBetter and regress in the other direction.
type metric struct {
	name          string
	lowerIsBetter bool
	extract       func(*experiments.PipelineReport) (float64, bool)
}

var metrics = []metric{
	{
		name: "submit@16 ops/sec",
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.Results {
				if res.API == "submit" && res.Producers == 16 {
					return res.OpsPerSec, true
				}
			}
			return 0, false
		},
	},
	{
		name: "segment restore-from-snapshot blocks/sec",
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.StorageResults {
				if res.Op == "restore" && res.Store == "segment" && res.Detail == "snapshot" {
					return res.BlocksPerSec, true
				}
			}
			return 0, false
		},
	},
	{
		name: "cluster@3 replicated blocks/sec",
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.ClusterResults {
				if res.Nodes == 3 {
					return res.BlocksPerSec, true
				}
			}
			return 0, false
		},
	},
	{
		name: "tombstone proofs/sec",
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.ManifestResults {
				if res.Op == "proofs" {
					return res.RatePerSec, true
				}
			}
			return 0, false
		},
	},
	{
		name:          "append allocs/entry",
		lowerIsBetter: true,
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.HotPathResults {
				if res.Op == "append-allocs" {
					return res.AllocsPerEntry, true
				}
			}
			return 0, false
		},
	},
	{
		name:          "group-commit fsyncs/block@16",
		lowerIsBetter: true,
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.HotPathResults {
				if res.Op == "durability" && res.Mode == "group" {
					return res.FsyncsPerBlock, true
				}
			}
			return 0, false
		},
	},
}

// evaluate returns one failure line per guarded metric whose candidate
// moved more than maxRegress in the bad direction: below the baseline
// for rates, above it for lower-is-better costs. A metric missing from
// the candidate while present in the baseline is a failure too (the
// dimension silently stopped running); one missing from the baseline is
// skipped.
func evaluate(base, cand *experiments.PipelineReport, maxRegress float64) []string {
	var failures []string
	for _, m := range metrics {
		b, ok := m.extract(base)
		if !ok || b <= 0 {
			continue
		}
		c, ok := m.extract(cand)
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from candidate (baseline %.3g)", m.name, b))
			continue
		}
		if m.lowerIsBetter {
			ceiling := b * (1 + maxRegress)
			if c > ceiling {
				failures = append(failures, fmt.Sprintf("%s: %.3g > ceiling %.3g (baseline %.3g, allowed +%.0f%%)",
					m.name, c, ceiling, b, maxRegress*100))
			} else {
				fmt.Printf("ok: %-45s %10.3g (baseline %.3g, ceiling %.3g)\n", m.name, c, b, ceiling)
			}
			continue
		}
		floor := b * (1 - maxRegress)
		if c < floor {
			failures = append(failures, fmt.Sprintf("%s: %.0f < floor %.0f (baseline %.0f, allowed -%.0f%%)",
				m.name, c, floor, b, maxRegress*100))
		} else {
			fmt.Printf("ok: %-45s %10.0f (baseline %.0f, floor %.0f)\n", m.name, c, b, floor)
		}
	}
	return failures
}
