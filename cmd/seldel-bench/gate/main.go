// Command gate is the CI bench-smoke regression gate: it compares a
// freshly measured `seldel-bench -json` report against the committed
// baseline and fails (exit 1) when a guarded throughput metric
// regressed by more than the allowed fraction.
//
// Guarded metrics are either rates (ops/sec, blocks/sec — lower is a
// regression) or costs (allocs per appended entry, fsyncs per block —
// HIGHER is a regression); both are stable under a smaller
// -json-entries than the baseline. Rate guards: submission throughput
// at 16 producers, segment-store restore-from-snapshot throughput,
// cluster-replicated block throughput at 3 nodes, tombstone-proof
// build+verify throughput, and partitioned submission throughput at 4
// partitions. Cost guards: pipelined append allocs/entry, group-commit
// fsyncs/block at 16 producers, and open-loop p99 append latency
// through the HTTP front-end (the serving dimension; -dimension load
// evaluates it alone, for seldel-load -json reports that carry nothing
// else). Candidate-only checks: the 4-partition scaling floor
// (-min-partition-scaling, >= 4-CPU hardware) and the open-loop shed
// ceiling (-max-shed-frac). Dimensions absent from the baseline are
// skipped with a printed "skip:" line — never silently (see README.md
// here for the history).
//
// Usage:
//
//	gate -baseline BENCH_PR9.json -candidate bench-smoke.json -max-regress 0.30
//	gate -baseline load-base.json -candidate load.json -dimension load -max-shed-frac 0.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/seldel/seldel/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ContinueOnError)
	basePath := fs.String("baseline", "", "committed baseline report (e.g. BENCH_PR4.json)")
	candPath := fs.String("candidate", "", "freshly measured report (e.g. bench-smoke.json)")
	maxRegress := fs.Float64("max-regress", 0.30, "maximum allowed fractional regression per metric")
	minScaling := fs.Float64("min-partition-scaling", 2.0, "minimum 4-partition over 1-partition submit throughput (enforced only when the candidate ran on >= 4 CPUs)")
	maxShed := fs.Float64("max-shed-frac", -1, "maximum shed fraction on the candidate's open-loop append run (candidate-only check; negative disables)")
	dimension := fs.String("dimension", "all", `metric subset to evaluate: "all", or "load" for reports holding only the serving dimension (seldel-load -json)`)
	enforce := fs.Bool("enforce", false, "fail on regression even when the baseline was measured on different hardware")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *candPath == "" {
		return fmt.Errorf("both -baseline and -candidate are required")
	}
	guarded, ok := metricSets[*dimension]
	if !ok {
		return fmt.Errorf("unknown -dimension %q (want all or load)", *dimension)
	}
	base, err := readReport(*basePath)
	if err != nil {
		return err
	}
	cand, err := readReport(*candPath)
	if err != nil {
		return err
	}
	failures := evaluate(guarded, base, cand, *maxRegress)
	// The partition scaling floor and the shed ceiling are candidate-only
	// (ratios within one report), so baseline hardware mismatch never
	// downgrades them.
	var scaling []string
	if *dimension == "all" {
		scaling = checkPartitionScaling(cand, *minScaling)
	}
	scaling = append(scaling, checkShedFraction(cand, *maxShed)...)
	if len(failures) == 0 && len(scaling) == 0 {
		fmt.Println("bench gate passed")
		return nil
	}
	for _, f := range append(append([]string{}, failures...), scaling...) {
		fmt.Fprintln(os.Stderr, "REGRESSION:", f)
	}
	// Absolute rates only transfer between comparable machines. When
	// the baseline was recorded on a different hardware class, a hard
	// failure would be noise (and a pass would prove nothing), so the
	// gate reports the regressions as advisory and asks the operator to
	// recalibrate; -enforce overrides.
	if match, why := hardwareComparable(base, cand); !match && !*enforce {
		fmt.Fprintf(os.Stderr, "WARNING: baseline hardware differs from candidate (%s); "+
			"baseline-relative regressions above are ADVISORY — regenerate the baseline from this "+
			"environment's bench output (e.g. the CI bench-smoke artifact) to arm the gate, or pass -enforce\n", why)
		if len(scaling) > 0 {
			return fmt.Errorf("candidate-only check violated (hardware mismatch does not excuse it)")
		}
		return nil
	}
	return fmt.Errorf("%d metric(s) regressed beyond allowed bounds", len(failures)+len(scaling))
}

// checkPartitionScaling enforces the sharding floor: the 4-partition
// submission row must beat the single-partition row by at least min on
// hardware that can actually run four sub-chains in parallel. On
// narrower boxes (or candidates without the dimension) the check skips
// loudly instead of passing silently.
func checkPartitionScaling(cand *experiments.PipelineReport, min float64) []string {
	if min <= 0 {
		return nil
	}
	if cand.PartitionScaling4x <= 0 {
		fmt.Println("skip: partition scaling floor — candidate has no partition dimension; floor UNENFORCED this run")
		return nil
	}
	if cand.NumCPU < 4 {
		fmt.Printf("skip: partition scaling floor — candidate num_cpu=%d < 4; 4-way sharding cannot scale here, floor UNENFORCED this run\n", cand.NumCPU)
		return nil
	}
	if cand.PartitionScaling4x < min {
		return []string{fmt.Sprintf("partition scaling: 4p/1p %.2fx < floor %.2fx (num_cpu=%d)",
			cand.PartitionScaling4x, min, cand.NumCPU)}
	}
	fmt.Printf("ok: %-45s %9.2fx (floor %.2fx)\n", "partition scaling 4p/1p", cand.PartitionScaling4x, min)
	return nil
}

// checkShedFraction enforces the load ceiling: at the fixed open-loop
// rate the server must answer, not shed — a rising shed fraction at an
// unchanged offered rate means admission control is carrying load the
// pipeline used to absorb. Candidate-only, like the scaling floor.
func checkShedFraction(cand *experiments.PipelineReport, max float64) []string {
	if max < 0 {
		return nil
	}
	for _, r := range cand.LoadResults {
		if r.Workload != "append" {
			continue
		}
		if r.ShedFraction > max {
			return []string{fmt.Sprintf("load shed fraction: %.3f > ceiling %.3f (offered %.0f/s, %d sheds of %d)",
				r.ShedFraction, max, r.OfferedPerSec, r.Sheds, r.Scheduled)}
		}
		fmt.Printf("ok: %-45s %10.3f (ceiling %.3f)\n", "load shed fraction (append)", r.ShedFraction, max)
		return nil
	}
	fmt.Println("skip: load shed ceiling — candidate has no open-loop append run; ceiling UNENFORCED this run")
	return nil
}

// hardwareComparable reports whether two reports came from the same
// hardware class — the precondition for comparing absolute rates.
func hardwareComparable(base, cand *experiments.PipelineReport) (bool, string) {
	if base.GOOS != cand.GOOS || base.GOARCH != cand.GOARCH {
		return false, fmt.Sprintf("baseline %s/%s vs candidate %s/%s", base.GOOS, base.GOARCH, cand.GOOS, cand.GOARCH)
	}
	if base.NumCPU != cand.NumCPU {
		return false, fmt.Sprintf("baseline num_cpu=%d vs candidate num_cpu=%d", base.NumCPU, cand.NumCPU)
	}
	return true, ""
}

func readReport(path string) (*experiments.PipelineReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r experiments.PipelineReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// metric extracts one guarded number from a report; ok is false when
// the report does not contain it (old baselines, partial runs). By
// default the number is a rate (lower candidate = regression); cost
// metrics set lowerIsBetter and regress in the other direction.
type metric struct {
	name          string
	lowerIsBetter bool
	extract       func(*experiments.PipelineReport) (float64, bool)
}

// loadMetrics guard the serving dimension alone; the load-smoke job
// evaluates just these (-dimension load) because seldel-load -json
// reports carry no other dimension and a full-report baseline would
// otherwise read every absent dimension as "silently stopped running".
var loadMetrics = []metric{
	{
		name:          "serve append p99 µs @fixed-rate",
		lowerIsBetter: true,
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			if r.ServeAppendP99Micros <= 0 {
				return 0, false
			}
			return r.ServeAppendP99Micros, true
		},
	},
}

// metricSets maps -dimension to the metric subset it evaluates.
var metricSets = map[string][]metric{
	"all":  append(append([]metric{}, metrics...), loadMetrics...),
	"load": loadMetrics,
}

var metrics = []metric{
	{
		name: "submit@16 ops/sec",
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.Results {
				if res.API == "submit" && res.Producers == 16 {
					return res.OpsPerSec, true
				}
			}
			return 0, false
		},
	},
	{
		name: "segment restore-from-snapshot blocks/sec",
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.StorageResults {
				if res.Op == "restore" && res.Store == "segment" && res.Detail == "snapshot" {
					return res.BlocksPerSec, true
				}
			}
			return 0, false
		},
	},
	{
		name: "cluster@3 replicated blocks/sec",
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.ClusterResults {
				if res.Nodes == 3 {
					return res.BlocksPerSec, true
				}
			}
			return 0, false
		},
	},
	{
		// The WAN convergence row: proposal rounds a deletion needs to
		// become unresolvable on all 50 geo-distributed nodes. A round
		// count, not a rate — hardware-independent and exactly what the
		// WAN scenario suite pins — so creeping protocol regressions
		// (extra sync round trips, slower vote convergence) surface here
		// even between hardware classes.
		name:          "cluster@50 WAN deletion convergence rounds",
		lowerIsBetter: true,
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.ClusterResults {
				if res.Nodes == 50 && res.DeletionRounds > 0 {
					return float64(res.DeletionRounds), true
				}
			}
			return 0, false
		},
	},
	{
		name: "tombstone proofs/sec",
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.ManifestResults {
				if res.Op == "proofs" {
					return res.RatePerSec, true
				}
			}
			return 0, false
		},
	},
	{
		name: "partitions submit@16 @4p ops/sec",
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.PartitionResults {
				if res.Partitions == 4 && res.Producers == 16 {
					return res.OpsPerSec, true
				}
			}
			return 0, false
		},
	},
	{
		name:          "append allocs/entry",
		lowerIsBetter: true,
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.HotPathResults {
				if res.Op == "append-allocs" {
					return res.AllocsPerEntry, true
				}
			}
			return 0, false
		},
	},
	{
		name:          "group-commit fsyncs/block@16",
		lowerIsBetter: true,
		extract: func(r *experiments.PipelineReport) (float64, bool) {
			for _, res := range r.HotPathResults {
				if res.Op == "durability" && res.Mode == "group" {
					return res.FsyncsPerBlock, true
				}
			}
			return 0, false
		},
	},
}

// evaluate returns one failure line per guarded metric whose candidate
// moved more than maxRegress in the bad direction: below the baseline
// for rates, above it for lower-is-better costs. A metric missing from
// the candidate while present in the baseline is a failure too (the
// dimension silently stopped running); one missing from the baseline is
// skipped — loudly, so a gate run that guarded fewer dimensions than
// the reader assumed is visible in the log instead of reading as full
// coverage (that silence is how the PR 6 manifest dimension shipped
// ungated; see README.md in this directory).
func evaluate(guarded []metric, base, cand *experiments.PipelineReport, maxRegress float64) []string {
	var failures []string
	for _, m := range guarded {
		b, ok := m.extract(base)
		if !ok || b <= 0 {
			fmt.Printf("skip: %-43s not in baseline — dimension UNGUARDED this run; regenerate the baseline to arm it\n", m.name)
			continue
		}
		c, ok := m.extract(cand)
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from candidate (baseline %.3g)", m.name, b))
			continue
		}
		if m.lowerIsBetter {
			ceiling := b * (1 + maxRegress)
			if c > ceiling {
				failures = append(failures, fmt.Sprintf("%s: %.3g > ceiling %.3g (baseline %.3g, allowed +%.0f%%)",
					m.name, c, ceiling, b, maxRegress*100))
			} else {
				fmt.Printf("ok: %-45s %10.3g (baseline %.3g, ceiling %.3g)\n", m.name, c, b, ceiling)
			}
			continue
		}
		floor := b * (1 - maxRegress)
		if c < floor {
			failures = append(failures, fmt.Sprintf("%s: %.0f < floor %.0f (baseline %.0f, allowed -%.0f%%)",
				m.name, c, floor, b, maxRegress*100))
		} else {
			fmt.Printf("ok: %-45s %10.0f (baseline %.0f, floor %.0f)\n", m.name, c, b, floor)
		}
	}
	return failures
}
