package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig6"}); err != nil {
		t.Fatalf("run fig6: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
