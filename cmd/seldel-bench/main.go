// Command seldel-bench regenerates the paper's figures and the
// quantitative claims of the evaluation (experiment index E1–E12 in
// DESIGN.md).
//
// Usage:
//
//	seldel-bench                        # run everything
//	seldel-bench -list                  # list experiment ids
//	seldel-bench -run fig7              # run one experiment
//	seldel-bench -json BENCH_PR1.json   # machine-readable pipeline bench
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/seldel/seldel/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "seldel-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("seldel-bench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	id := fs.String("run", "", "run a single experiment by id (default: all)")
	jsonPath := fs.String("json", "", "run the submission-pipeline benchmark and write machine-readable results to this file")
	jsonN := fs.Int("json-entries", 4000, "entries per configuration for -json")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the run to this file (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "seldel-bench: memprofile:", err)
				return
			}
			defer f.Close()
			// Settle the heap so the profile shows retained allocations,
			// not garbage awaiting collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "seldel-bench: memprofile:", err)
			}
		}()
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *jsonPath != "" {
		report, err := experiments.WritePipelineJSON(*jsonPath, *jsonN)
		if err != nil {
			return err
		}
		for _, r := range report.Results {
			fmt.Printf("%-7s producers=%-2d entries=%-6d blocks=%-5d %10.0f ops/sec\n",
				r.API, r.Producers, r.Entries, r.Blocks, r.OpsPerSec)
		}
		fmt.Printf("submit@16 vs serial@1: %.2fx\n", report.SpeedupX16)
		for _, r := range report.VerifyResults {
			fmt.Printf("verify  gomaxprocs=%-2d cache=%-5v entries=%-6d %10.0f ops/sec (ed25519=%d, hits=%d)\n",
				r.GOMAXPROCS, r.Cache, r.Entries, r.OpsPerSec, r.Verified, r.CacheHits)
		}
		fmt.Printf("verify pool: %.2fx; cache: %.2fx\n",
			report.VerifyPoolSpeedup, report.VerifyCacheSpeedup)
		for _, r := range report.DeletionResults {
			fmt.Printf("delete  producers=%-2d deletions=%-5d %10.0f del/sec  append=%.0fus  truncations=%d compacted=%d\n",
				r.Producers, r.Deletions, r.DeletionsPerSec, r.AvgAppendMicros,
				r.Truncations, r.BlocksCompacted)
		}
		for _, r := range report.StorageResults {
			switch r.Op {
			case "reclaim":
				fmt.Printf("storage %-8s %-18s blocks=%-5d bytes %d -> %d (reclaimed %d, %d segments)\n",
					r.Op, r.Store, r.Blocks, r.BytesBefore, r.BytesAfter, r.BytesReclaimed, r.Segments)
			default:
				fmt.Printf("storage %-8s %-18s blocks=%-5d %10.0f blocks/sec %s\n",
					r.Op, r.Store, r.Blocks, r.BlocksPerSec, r.Detail)
			}
		}
		fmt.Printf("restore snapshot vs genesis: %.2fx\n", report.RestoreSnapshotSpeedup)
		for _, r := range report.ClusterResults {
			fmt.Printf("cluster nodes=%-3d rounds=%-4d blocks=%-5d %10.0f blocks/sec  deletion converged in %d rounds / %.1fms\n",
				r.Nodes, r.Rounds, r.Blocks, r.BlocksPerSec, r.DeletionRounds, r.DeletionConvergeMillis)
		}
		for _, r := range report.ManifestResults {
			fmt.Printf("manifest %-9s manifest=%-5v rounds=%-5d records=%-3d %10.0f /sec\n",
				r.Op, r.Manifest, r.Rounds, r.Records, r.RatePerSec)
		}
		fmt.Printf("tombstone proofs: %.0f/sec\n", report.TombstoneProofsPerSec)
		for _, r := range report.BatchVerifyResults {
			fmt.Printf("verifybatch %-6s batch=%-3d warm=%.1f dup=%.1f sigs=%-5d %10.0f sigs/sec (ed25519=%d, hits=%d) %5.2fx\n",
				r.Mode, r.BatchSize, r.WarmFrac, r.DupFrac, r.Sigs, r.SigsPerSec, r.Verified, r.CacheHits, r.Speedup)
		}
		fmt.Printf("batch verify (batch=16, warm 0.5) vs single-sig: %.2fx\n", report.BatchVerifySpeedup)
		for _, r := range report.HotPathResults {
			switch r.Op {
			case "append-allocs":
				fmt.Printf("hotpath allocs     producers=%-2d entries=%-6d %8.1f allocs/entry %8.0f bytes/entry %10.0f ops/sec\n",
					r.Producers, r.Entries, r.AllocsPerEntry, r.BytesPerEntry, r.OpsPerSec)
			case "durability":
				fmt.Printf("hotpath durability mode=%-10s producers=%-2d blocks=%-5d fsyncs=%-5d %6.3f fsyncs/block %10.0f ops/sec\n",
					r.Mode, r.Producers, r.Blocks, r.Fsyncs, r.FsyncsPerBlock, r.OpsPerSec)
			}
		}
		for _, r := range report.PartitionResults {
			fmt.Printf("partition n=%-2d producers=%-2d entries=%-6d %10.0f ops/sec\n",
				r.Partitions, r.Producers, r.Entries, r.OpsPerSec)
		}
		if report.PartitionScaling4x > 0 {
			fmt.Printf("partitions submit@16: 4p vs 1p %.2fx\n", report.PartitionScaling4x)
		}
		if b := report.HotPathBaselinePR6; b != nil && b.AllocsPerEntry > 0 {
			fmt.Printf("hotpath vs PR6 baseline (%s): allocs/entry %.1f -> %.1f, fsyncs/block (durable receipts) %.3f -> %.3f\n",
				b.Commit, b.AllocsPerEntry, report.AppendAllocsPerOp,
				b.FsyncsPerBlockSyncEvery, report.GroupFsyncsPerBlock)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		return nil
	}
	if *id != "" {
		return experiments.Run(os.Stdout, *id)
	}
	return experiments.RunAll(os.Stdout)
}
