// Command seldel-bench regenerates the paper's figures and the
// quantitative claims of the evaluation (experiment index E1–E12 in
// DESIGN.md).
//
// Usage:
//
//	seldel-bench               # run everything
//	seldel-bench -list         # list experiment ids
//	seldel-bench -run fig7     # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/seldel/seldel/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "seldel-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("seldel-bench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	id := fs.String("run", "", "run a single experiment by id (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *id != "" {
		return experiments.Run(os.Stdout, *id)
	}
	return experiments.RunAll(os.Stdout)
}
