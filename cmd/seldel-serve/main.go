// Command seldel-serve runs the HTTP/2 (h2c) serving front-end over a
// selective-deletion chain: client-signed submits batched into the
// submission pipeline, snapshot-consistent entry pagination, tombstone
// and deletion-proof reads, stats, and admission control that sheds
// with 429 + Retry-After before the intake queue saturates.
//
// Usage:
//
//	seldel-serve -addr :8420 -store /var/lib/seldel
//	seldel-serve -addr :8420 -store /var/lib/seldel -partitions 4
//	seldel-serve -addr :8420 -durability group -group-window 2ms
//
// The identity registry is seeded with -keys deterministic user keys
// derived from -key-seed (user000, user001, ...), matching what
// seldel-load signs with client-side. Production deployments would
// load a real registry instead; the deterministic registry is what
// makes the serve/load pair a self-contained harness.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/serve"
	"github.com/seldel/seldel/internal/simclock"

	seldel "github.com/seldel/seldel"
)

func main() {
	if err := run(context.Background(), os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "seldel-serve:", err)
		os.Exit(1)
	}
}

// registrySeed registers n deterministic user keys (user000...) plus a
// master key, mirroring seldel-load's client-side derivation.
func registrySeed(n int, seed string) (*identity.Registry, error) {
	reg := identity.NewRegistry()
	for i := 0; i < n; i++ {
		kp := identity.Deterministic(fmt.Sprintf("user%03d", i), seed)
		if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
			return nil, err
		}
	}
	if err := reg.RegisterKey(identity.Deterministic("master", seed), identity.RoleMaster); err != nil {
		return nil, err
	}
	return reg, nil
}

// run is main without the process plumbing: tests pass ready to learn
// the bound address (use -addr 127.0.0.1:0) and cancel ctx to stop.
func run(ctx context.Context, args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("seldel-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8420", "listen address")
	storeDir := fs.String("store", "", "segment-store root directory (empty: in-memory chain)")
	partitions := fs.Int("partitions", 1, "number of chain partitions (>1 shards the write path)")
	seqLen := fs.Int("seq-len", 3, "blocks per sequence (summary block distance)")
	maxSeq := fs.Int("max-sequences", 64, "live-chain bound in sequences (0: unbounded, no physical deletion)")
	durability := fs.String("durability", "seal", `receipt durability: "seal" or "group" (group commit; requires -store)`)
	groupWindow := fs.Duration("group-window", 0, "group-commit accumulation window (with -durability group)")
	shedFrac := fs.Float64("shed-frac", 0.75, "intake-queue fullness at which submits shed with 429")
	maxPending := fs.Int("max-pending", 0, "admission budget of accepted-but-unsealed entries (0: derive from queue capacity, negative: disable)")
	keys := fs.Int("keys", 64, "deterministic user keys to register (user000, ...)")
	keySeed := fs.String("key-seed", "seldel-serve", "seed for deterministic key derivation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *partitions < 1 {
		return fmt.Errorf("-partitions %d: want >= 1", *partitions)
	}
	if *shedFrac <= 0 || *shedFrac > 1 {
		return fmt.Errorf("-shed-frac %v: want a fraction in (0,1]", *shedFrac)
	}

	reg, err := registrySeed(*keys, *keySeed)
	if err != nil {
		return err
	}
	opts := []seldel.Option{
		seldel.WithSequenceLength(*seqLen),
		seldel.WithClock(simclock.NewWall()),
	}
	if *maxSeq > 0 {
		opts = append(opts, seldel.WithMaxSequences(*maxSeq))
	}
	if *storeDir != "" {
		opts = append(opts, seldel.WithSegmentStore(*storeDir))
	}
	switch *durability {
	case "seal":
	case "group":
		if *storeDir == "" {
			return errors.New("-durability group requires -store")
		}
		opts = append(opts, seldel.WithDurability(seldel.DurabilityGroup, *groupWindow))
	default:
		return fmt.Errorf("unknown -durability %q (want seal or group)", *durability)
	}

	var (
		backend serve.Backend
		closeFn func() error
	)
	if *partitions > 1 {
		pc, err := seldel.NewPartitioned(reg, append(opts, seldel.WithPartitions(*partitions))...)
		if err != nil {
			return err
		}
		backend, closeFn = pc, pc.Close
	} else {
		c, err := seldel.New(reg, opts...)
		if err != nil {
			return err
		}
		backend, closeFn = c, c.Close
	}
	defer func() { _ = closeFn() }()

	srv := serve.New(backend, serve.Options{Admission: serve.AdmissionOptions{
		ShedFraction: *shedFrac,
		MaxPending:   *maxPending,
	}})
	defer srv.Close()

	httpSrv := srv.HTTPServer(*addr)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "seldel-serve: listening on %s (partitions=%d store=%q durability=%s)\n",
		ln.Addr(), *partitions, *storeDir, *durability)
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
