package main

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"
)

// startServe runs the command against an ephemeral port and returns
// its base URL plus a cancel that shuts it down gracefully.
func startServe(t *testing.T, extraArgs ...string) (string, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() {
		errCh <- run(ctx, args, func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		t.Cleanup(func() {
			cancel()
			select {
			case err := <-errCh:
				if err != nil {
					t.Errorf("serve exited: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Error("serve did not shut down")
			}
		})
		return "http://" + addr, cancel
	case err := <-errCh:
		t.Fatalf("serve failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never reported ready")
	}
	panic("unreachable")
}

func TestServeSmoke(t *testing.T) {
	base, _ := startServe(t)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	var stats struct {
		Server struct {
			MaxPendingEntries int64 `json:"max_pending_entries"`
		} `json:"server"`
	}
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server.MaxPendingEntries == 0 {
		t.Error("stats reports no admission budget")
	}
}

func TestServePartitionedAndDurableSmoke(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base, _ := startServe(t, "-partitions", "2", "-store", dir, "-durability", "group")
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
}

func TestServeFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-durability", "group"},       // group commit requires -store
		{"-durability", "bogus"},       // unknown mode
		{"-partitions", "-1"},          // negative shard count
		{"-shed-frac", "1.5"},          // fraction out of range
		{"-addr", "127.0.0.1:0", "-x"}, // unknown flag
	} {
		if err := run(context.Background(), args, func(string) {}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
