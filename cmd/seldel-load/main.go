// Command seldel-load drives a running seldel-serve open-loop: requests
// fire on a fixed schedule regardless of whether earlier responses came
// back, and latency is measured from each request's scheduled time, so
// server stalls show up in the tail quantiles instead of silently
// slowing the offered load (see README.md on coordinated omission).
//
// Usage:
//
//	seldel-load -addr 127.0.0.1:8420 -rate 1000 -duration 10s
//	seldel-load -addr 127.0.0.1:8420 -workload deletion-storm -requests 2000
//	seldel-load -addr 127.0.0.1:8420 -workload mixed -rate 500 -json load.json
//
// Workloads: "append" (signed data entries), "deletion-storm" (seed
// targets, then signed deletion requests), "read-churn" (paginated
// entry reads), "mixed" (70% append / 15% delete / 15% read). Entries
// are signed CLIENT-side with the same deterministic keys seldel-serve
// registers (-users / -key-seed must match the server's -keys /
// -key-seed).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/experiments"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/loadgen"
	"github.com/seldel/seldel/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seldel-load:", err)
		os.Exit(1)
	}
}

// harness holds one run's fixed state: the target server, the signing
// keys, and the pre-encoded request bodies.
type harness struct {
	base   string
	client *http.Client
	keys   []*identity.KeyPair
	bodies [][]byte // per-index POST bodies ("" scheme requests are GETs)
	reads  []string // per-index GET paths for read-type requests
}

func (h *harness) key(i int) *identity.KeyPair { return h.keys[i%len(h.keys)] }

// classify maps one response to the open-loop outcome classes.
func classify(resp *http.Response, err error) loadgen.Class {
	if err != nil {
		return loadgen.Errored
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		return loadgen.OK
	case http.StatusTooManyRequests:
		return loadgen.Shed
	default:
		return loadgen.Errored
	}
}

// fire issues request i: a pre-encoded submit when bodies[i] is set, a
// pagination read otherwise.
func (h *harness) fire(ctx context.Context, i int) loadgen.Class {
	if b := h.bodies[i]; b != nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/v1/submit?wait=1", bytes.NewReader(b))
		if err != nil {
			return loadgen.Errored
		}
		req.Header.Set("Content-Type", "application/json")
		return classify(h.client.Do(req))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+h.reads[i], nil)
	if err != nil {
		return loadgen.Errored
	}
	return classify(h.client.Do(req))
}

// submitBody pre-encodes one submit request.
func submitBody(entries ...*block.Entry) ([]byte, error) {
	req := serve.SubmitRequest{Entries: make([]serve.EntryJSON, len(entries))}
	for i, e := range entries {
		req.Entries[i] = serve.NewEntryJSON(e)
	}
	return json.Marshal(req)
}

// seedTargets appends n data entries through the server (blocking, NOT
// part of the measured run) and returns their sealed refs — the
// deletion-storm and mixed workloads' victims. Seeding is setup, not
// measurement, so a 429 is honored rather than reported: the batch
// waits out Retry-After and halves its size until it fits the server's
// admission budget (which can be far below 128 entries under tight
// -max-pending or small intake queues, e.g. group durability).
func (h *harness) seedTargets(ctx context.Context, n, payload int) ([]block.Ref, []string, error) {
	refs := make([]block.Ref, 0, n)
	owners := make([]string, 0, n)
	batch, sheds := 128, 0
	for off := 0; off < n; {
		m := min(batch, n-off)
		entries := make([]*block.Entry, m)
		for j := range entries {
			kp := h.key(off + j)
			entries[j] = block.NewData(kp.Name(), seedPayload(off+j, payload)).Sign(kp)
		}
		body, err := submitBody(entries...)
		if err != nil {
			return nil, nil, err
		}
		resp, err := h.client.Post(h.base+"/v1/submit?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retry := time.Second
			if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
				retry = time.Duration(v) * time.Second
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if sheds++; sheds > 64 {
				return nil, nil, fmt.Errorf("seeding: shed %d times; server admits too little for setup", sheds)
			}
			batch = max(batch/2, 1)
			select {
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			case <-time.After(retry):
			}
			continue
		}
		var sr serve.SubmitResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, nil, fmt.Errorf("seeding: HTTP %d", resp.StatusCode)
		}
		for j, s := range sr.Sealed {
			if s.Error != "" {
				return nil, nil, fmt.Errorf("seeding entry %d: %s", off+j, s.Error)
			}
			refs = append(refs, s.Ref.Ref())
			owners = append(owners, entries[j].Owner)
		}
		off += m
	}
	return refs, owners, nil
}

func seedPayload(i, size int) []byte {
	p := fmt.Appendf(nil, "seed-%08d-", i)
	for len(p) < size {
		p = append(p, 'x')
	}
	return p
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("seldel-load", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8420", "seldel-serve address")
	workload := fs.String("workload", "append", "request mix: append, deletion-storm, read-churn, mixed")
	rate := fs.Float64("rate", 500, "offered load, requests/second (the open-loop schedule)")
	duration := fs.Duration("duration", 0, "run length (0: use -requests)")
	requests := fs.Int("requests", 2000, "request count (ignored when -duration is set)")
	users := fs.Int("users", 64, "deterministic signing keys (must match server -keys)")
	keySeed := fs.String("key-seed", "seldel-serve", "key-derivation seed (must match server -key-seed)")
	payload := fs.Int("payload", 64, "data-entry payload bytes")
	maxInflight := fs.Int("max-inflight", 4096, "in-flight safety valve (scheduled requests beyond it count as dropped)")
	jsonPath := fs.String("json", "", "write machine-readable results (bench-gate PipelineReport shape) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 {
		return errors.New("-rate must be > 0")
	}
	total := *requests
	if *duration > 0 {
		// Open loop: the schedule alone decides the count. Pre-encode a
		// 10% margin so a fast run never starves the body table.
		total = int(*rate*(*duration).Seconds()*1.1) + 16
	}

	h := &harness{
		base:   "http://" + *addr,
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 512, MaxConnsPerHost: 0}},
		keys:   make([]*identity.KeyPair, *users),
		bodies: make([][]byte, total),
		reads:  make([]string, total),
	}
	for i := range h.keys {
		h.keys[i] = identity.Deterministic(fmt.Sprintf("user%03d", i), *keySeed)
	}
	if _, err := h.client.Get(h.base + "/healthz"); err != nil {
		return fmt.Errorf("server not reachable: %w", err)
	}

	// Build the request table up front: all signing and JSON encoding
	// happens before the schedule starts, so the measured section holds
	// transport + server time only.
	type plan struct{ appends, deletes, reads int }
	var p plan
	switch *workload {
	case "append":
		p.appends = total
	case "deletion-storm":
		p.deletes = total
	case "read-churn":
		p.reads = total
	case "mixed":
		for i := 0; i < total; i++ {
			switch {
			case i%20 < 14:
				p.appends++
			case i%20 < 17:
				p.deletes++
			default:
				p.reads++
			}
		}
	default:
		return fmt.Errorf("unknown -workload %q", *workload)
	}
	var refs []block.Ref
	var owners []string
	if p.deletes > 0 {
		fmt.Fprintf(out, "seeding %d deletion targets...\n", p.deletes)
		var err error
		refs, owners, err = h.seedTargets(ctx, p.deletes, *payload)
		if err != nil {
			return err
		}
	}
	appendIdx, deleteIdx := 0, 0
	for i := 0; i < total; i++ {
		var kind string
		switch *workload {
		case "append":
			kind = "a"
		case "deletion-storm":
			kind = "d"
		case "read-churn":
			kind = "r"
		case "mixed":
			switch {
			case i%20 < 14:
				kind = "a"
			case i%20 < 17:
				kind = "d"
			default:
				kind = "r"
			}
		}
		switch kind {
		case "a":
			kp := h.key(i)
			e := block.NewData(kp.Name(), seedPayload(i, *payload)).Sign(kp)
			body, err := submitBody(e)
			if err != nil {
				return err
			}
			h.bodies[i] = body
			appendIdx++
		case "d":
			// Each victim is deleted by its own owner, satisfying the
			// default role-based deletion policy.
			kp := keyByName(h.keys, owners[deleteIdx])
			e := block.NewDeletion(kp.Name(), refs[deleteIdx]).Sign(kp)
			body, err := submitBody(e)
			if err != nil {
				return err
			}
			h.bodies[i] = body
			deleteIdx++
		case "r":
			h.reads[i] = "/v1/entries?limit=128"
		}
	}

	fmt.Fprintf(out, "offering %.0f req/s (%s) against %s...\n", *rate, *workload, *addr)
	sum := loadgen.Run(ctx, loadgen.Options{
		Rate:        *rate,
		Duration:    *duration,
		Requests:    boundRequests(*duration, total, *requests),
		MaxInflight: *maxInflight,
		Fire:        h.fire,
	})

	fmt.Fprintf(out, "workload=%s offered=%.0f/s achieved=%.0f/s wall=%.2fs\n",
		*workload, sum.Offered, sum.Achieved, sum.WallSec)
	fmt.Fprintf(out, "scheduled=%d ok=%d sheds=%d (%.1f%%) errors=%d dropped=%d\n",
		sum.Scheduled, sum.OKs, sum.Sheds, 100*sum.ShedFraction(), sum.Errors, sum.Dropped)
	fmt.Fprintf(out, "latency (from scheduled time): p50=%s p99=%s p999=%s max=%s\n",
		us(sum.P50Micros), us(sum.P99Micros), us(sum.P999Micro), us(sum.MaxMicros))

	if *jsonPath != "" {
		report := experiments.NewLoadReport([]experiments.LoadResult{
			experiments.LoadResultFrom(*workload, sum),
		})
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonPath)
	}
	if sum.Errors > 0 {
		return fmt.Errorf("%d requests errored", sum.Errors)
	}
	return nil
}

// boundRequests picks the loadgen request bound: duration-driven runs
// are bounded by the body table, count-driven runs by -requests.
func boundRequests(d time.Duration, total, requests int) int {
	if d > 0 {
		return total
	}
	return requests
}

func keyByName(keys []*identity.KeyPair, name string) *identity.KeyPair {
	for _, kp := range keys {
		if kp.Name() == name {
			return kp
		}
	}
	return keys[0]
}

func us(v int64) string { return time.Duration(v * int64(time.Microsecond)).String() }
