package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/experiments"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/serve"
	"github.com/seldel/seldel/internal/simclock"
)

// startBackend stands up the real serving front-end over an in-memory
// chain whose registry holds the same deterministic user keys the load
// generator derives from -users / -key-seed.
func startBackend(t *testing.T, users int, keySeed string) string {
	t.Helper()
	reg := identity.NewRegistry()
	for i := 0; i < users; i++ {
		kp := identity.Deterministic(fmt.Sprintf("user%03d", i), keySeed)
		if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
			t.Fatal(err)
		}
	}
	c, err := chain.New(chain.Config{
		SequenceLength: 8,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s := serve.New(c, serve.Options{})
	t.Cleanup(func() { s.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := s.HTTPServer(ln.Addr().String())
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() { hs.Close() })
	return ln.Addr().String()
}

func TestLoadMixedWorkloadEndToEnd(t *testing.T) {
	addr := startBackend(t, 8, "load-test")
	out := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", addr, "-workload", "mixed",
		"-rate", "400", "-requests", "200",
		"-users", "8", "-key-seed", "load-test",
		"-json", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	for _, want := range []string{"offered=400/s", "scheduled=200", "latency (from scheduled time)"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report experiments.PipelineReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Bench != "serve-load" || len(report.LoadResults) != 1 {
		t.Fatalf("report: bench=%q load_results=%d", report.Bench, len(report.LoadResults))
	}
	row := report.LoadResults[0]
	if row.Workload != "mixed" || row.Scheduled != 200 {
		t.Errorf("load row: %+v", row)
	}
	if row.OK+row.Sheds+row.Dropped != row.Scheduled {
		t.Errorf("accounting: ok %d + sheds %d + dropped %d != scheduled %d",
			row.OK, row.Sheds, row.Dropped, row.Scheduled)
	}
	// Mixed is 70% append / 15% delete / 15% read and every delete
	// victim was seeded first, so the server must hold entries.
	if row.Errors != 0 {
		t.Errorf("%d errors against a healthy in-process server", row.Errors)
	}
}

func TestLoadAppendJSONHasGateHeadline(t *testing.T) {
	addr := startBackend(t, 4, "load-test")
	out := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", addr, "-workload", "append",
		"-rate", "500", "-requests", "100",
		"-users", "4", "-key-seed", "load-test",
		"-json", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report experiments.PipelineReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	// The append row feeds the gate's serve_append_p99_us headline.
	if report.ServeAppendP99Micros <= 0 {
		t.Errorf("serve_append_p99_us = %v", report.ServeAppendP99Micros)
	}
}

// TestSeedTargetsHonorsBackpressure pins the setup phase's contract
// with admission control: a 429 during seeding is waited out (honoring
// Retry-After) with a halved batch, not reported as a run failure —
// servers with tight admission budgets (group durability, small
// -max-pending) shed whole-batch seeds routinely.
func TestSeedTargetsHonorsBackpressure(t *testing.T) {
	var calls, maxAfterShed int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		var sr serve.SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
			t.Errorf("decode: %v", err)
		}
		if calls <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"queue full","retry_after_sec":1}`))
			return
		}
		maxAfterShed = max(maxAfterShed, len(sr.Entries))
		resp := serve.SubmitResponse{Accepted: len(sr.Entries), Sealed: make([]serve.SealedJSON, len(sr.Entries))}
		for i := range resp.Sealed {
			resp.Sealed[i] = serve.SealedJSON{Ref: serve.RefJSON{Block: 1, Entry: uint32(i)}, Block: 1}
		}
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer srv.Close()

	h := &harness{
		base:   srv.URL,
		client: srv.Client(),
		keys:   []*identity.KeyPair{identity.Deterministic("user000", "load-test")},
	}
	refs, owners, err := h.seedTargets(context.Background(), 100, 32)
	if err != nil {
		t.Fatalf("seedTargets: %v", err)
	}
	if len(refs) != 100 || len(owners) != 100 {
		t.Fatalf("seeded %d refs / %d owners, want 100", len(refs), len(owners))
	}
	if calls <= 2 {
		t.Fatalf("server saw %d calls; the shed batches were never retried", calls)
	}
	// Two sheds halve 128 -> 64 -> 32: post-shed batches must fit the
	// reduced size.
	if maxAfterShed > 32 {
		t.Errorf("post-shed batch of %d entries; halving not applied", maxAfterShed)
	}
}

func TestLoadFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-workload", "bogus", "-addr", "127.0.0.1:1"},
		{"-rate", "0"},
		{"-bogus-flag"},
	} {
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Unreachable server: a clean error, not a hang or panic.
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:1", "-requests", "1"}, &buf); err == nil {
		t.Error("unreachable server accepted")
	}
}
